package main

// Fleet-core performance mode: -perf sweeps fleet size × stream length ×
// router over a lightweight synthetic workload and emits BENCH_core.json,
// the committed perf-trajectory artifact. The workload is deliberately
// cheap per request (tiny prompts, short chains) so the measurement is
// dominated by the fleet event core — routing, event dispatch, load
// indexes — rather than by the simulated token arithmetic; wall-time here
// tracks scheduling overhead, which is exactly what the event-heap
// rewrite targets.
//
// A previous report's "current" runs can be carried forward as the
// "baseline" section with -perf-baseline, so the committed artifact
// records both the pre-refactor and post-refactor measurements of the
// same sweep and the speedup between them.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fasttts/internal/cluster"
	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// coreArtifact is the BENCH_core.json filename.
const coreArtifact = "BENCH_core.json"

// perfSpec is the synthetic dataset of the perf sweep: very short
// prompts and chains (mean step ≈ 11 tokens, ≤ 2 steps) keep per-request
// simulation cost low so fleet-core overhead dominates the wall time.
var perfSpec = workload.DatasetSpec{
	Name: "PERF", Problems: 64,
	DiffLo: 0.30, DiffHi: 0.70,
	StepLogMu: 2.3, StepLogSigma: 0.4, MinStepTokens: 4,
	MaxSteps: 2, TypicalSteps: 1.3,
	PromptLo: 8, PromptHi: 16,
	AnswerSpace: 10, QualityDriftScale: 1.0,
}

// perfRun is one measured sweep cell.
type perfRun struct {
	Devices  int     `json:"devices"`
	Requests int     `json:"requests"`
	Router   string  `json:"router"`
	WallMS   float64 `json:"wall_ms"`
	Served   int     `json:"served"`
	Rejected int     `json:"rejected"`
	Requeues int     `json:"requeues"`
	// EventsPerSec is served+rejected results per wall second: the
	// fleet core's scheduling throughput.
	EventsPerSec float64 `json:"events_per_sec"`
}

// perfSection is one labeled measurement set (baseline or current).
type perfSection struct {
	Label string    `json:"label"`
	Runs  []perfRun `json:"runs"`
}

// perfSpeedup summarizes current-vs-baseline on the matching cells.
type perfSpeedup struct {
	Devices  int                `json:"devices"`
	Requests int                `json:"requests"`
	ByRouter map[string]float64 `json:"by_router"`
	Min      float64            `json:"min"`
	Max      float64            `json:"max"`
}

// ctrlRun is one controller-overhead cell: the same fleet and stream
// measured with the elastic control plane off and on, so the delta is
// the cost of ticking, signal gathering, and actuation bookkeeping.
type ctrlRun struct {
	Devices  int     `json:"devices"`
	Requests int     `json:"requests"`
	Router   string  `json:"router"`
	OffMS    float64 `json:"off_wall_ms"`
	OnMS     float64 `json:"on_wall_ms"`
	// OverheadPct is (on - off) / off x 100; small negatives are timing
	// noise.
	OverheadPct float64 `json:"overhead_pct"`
	// Ticks / ScaleUps / ScaleDowns report what the controller actually
	// did during the measured run.
	Ticks      int `json:"ticks"`
	ScaleUps   int `json:"scale_ups"`
	ScaleDowns int `json:"scale_downs"`
}

// parRun is one parallel-scaling cell: the identical fleet and stream
// timed at one shard count. Shards == 1 is the sequential engine and the
// denominator of SpeedupVsSeq.
type parRun struct {
	Devices  int     `json:"devices"`
	Requests int     `json:"requests"`
	Router   string  `json:"router"`
	Shards   int     `json:"shards"`
	WallMS   float64 `json:"wall_ms"`
	// SpeedupVsSeq is the sequential cell's wall time over this one; the
	// engines are bit-identical, so this is pure wall-clock scaling.
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
	Served       int     `json:"served"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// parSection is the parallel-scaling measurement set. Cores and
// GOMAXPROCS record the measurement environment: shard workers cannot
// run concurrently beyond min(cores, GOMAXPROCS), so speedups measured
// on a small host understate what the same sweep shows on a wide one —
// regenerate on the target machine rather than extrapolating.
type parSection struct {
	Cores      int      `json:"cores"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Runs       []parRun `json:"runs"`
}

// perfReport is the BENCH_core.json document.
type perfReport struct {
	Schema    string       `json:"schema"`
	Seed      uint64       `json:"seed"`
	GoVersion string       `json:"go_version"`
	Baseline  *perfSection `json:"baseline,omitempty"`
	Current   perfSection  `json:"current"`
	// Speedups lists baseline/current wall-time ratios per matched
	// (devices, requests) cell; > 1 means the current code is faster.
	Speedups []perfSpeedup `json:"speedups,omitempty"`
	// ControllerOverhead holds the controller-on-vs-off cells (see
	// ctrlRun), produced by -perf-controller and merged alongside the
	// main sweep.
	ControllerOverhead []ctrlRun `json:"controller_overhead,omitempty"`
	// ParallelScaling holds the sharded-engine wall-clock cells (see
	// parRun), produced by -perf-parallel and merged alongside the main
	// sweep.
	ParallelScaling *parSection `json:"parallel_scaling,omitempty"`
}

// perfDeviceRate is the per-device arrival rate (req/s of virtual time).
// The stream rate scales with fleet size so per-device load is constant
// across the sweep, and it is set well above the per-device service rate:
// devices run with standing in-flight backlogs (capped by perfMaxInFlight,
// beyond which admission sheds), which is the regime the event core must
// survive — every fleet event then confronts a busy device population.
const perfDeviceRate = 30.0

// perfMaxInFlight caps each device's admitted unfinished requests, keeping
// per-slice policy scans bounded so every sweep cell completes; arrivals
// beyond it are shed, exercising the rejection path at scale.
const perfMaxInFlight = 32

// perfDevices builds the n-device fleet: homogeneous RTX 4090s, FCFS
// behind an admission limit, 1.5B pair, chain-of-thought search (a single
// device slice per request keeps the simulated token arithmetic minimal).
func perfDevices(n int, seed uint64) ([]cluster.Device, error) {
	pol, err := search.New(search.SingleCoT, 1, 1)
	if err != nil {
		return nil, err
	}
	devs := make([]cluster.Device, n)
	for i := range devs {
		devs[i] = cluster.Device{
			Config: core.Config{
				GPU:       hw.RTX4090,
				Generator: model.Qwen25Math1_5B,
				Verifier:  model.Qwen25Math1_5B,
				Policy:    pol,
				Opts:      core.BaselineOptions(),
				Seed:      seed + uint64(i),
			},
			Policy: sched.AdmissionLimit{Inner: sched.FCFS{}, MaxInFlight: perfMaxInFlight},
		}
	}
	return devs, nil
}

// perfStream builds the request stream: Poisson arrivals at a rate
// proportional to fleet size, problems cycled over the synthetic set
// (repeats give the prefix router real locality to exploit).
func perfStream(requests, devices int, seed uint64) []core.Request {
	root := rng.New(seed)
	ds := workload.NewDataset(perfSpec, root)
	arrivals := workload.PoissonArrivals(requests, perfDeviceRate*float64(devices), root.Child("perf/arrivals"))
	reqs := make([]core.Request, requests)
	for i := range reqs {
		reqs[i] = core.Request{
			Problem: ds.Problems[i%len(ds.Problems)],
			Arrival: arrivals[i],
			Tag:     i,
		}
	}
	return reqs
}

// perfCell measures one sweep cell: build a fresh fleet, serve the
// stream, time Fleet.Run. Small cells are repeated and the minimum wall
// time kept, damping scheduler noise.
func perfCell(devices, requests int, router string, seed uint64) (perfRun, error) {
	reps := 1
	if requests < 10000 {
		reps = 3
	}
	run := perfRun{Devices: devices, Requests: requests, Router: router}
	reqs := perfStream(requests, devices, seed)
	for rep := 0; rep < reps; rep++ {
		specs, err := perfDevices(devices, seed)
		if err != nil {
			return run, err
		}
		r, err := cluster.RouterByName(router)
		if err != nil {
			return run, err
		}
		fleet, err := cluster.New(cluster.Config{Devices: specs, Router: r, Seed: seed})
		if err != nil {
			return run, err
		}
		start := time.Now()
		out, err := fleet.Run(reqs)
		wall := time.Since(start)
		if err != nil {
			return run, err
		}
		ms := float64(wall.Nanoseconds()) / 1e6
		if rep == 0 || ms < run.WallMS {
			run.WallMS = ms
		}
		if rep == 0 {
			for _, res := range out.Results {
				if res.Rejected {
					run.Rejected++
				} else {
					run.Served++
				}
			}
			run.Requeues = out.Requeues
		}
	}
	if run.WallMS > 0 {
		run.EventsPerSec = float64(run.Served+run.Rejected) / (run.WallMS / 1e3)
	}
	return run, nil
}

// runPerfSweep executes the matrix and writes BENCH_core.json.
func runPerfSweep(deviceList, requestList []int, routers []string, seed uint64, label, baselinePath, outDir string) error {
	report := perfReport{
		Schema:    "fasttts-bench-core/v1",
		Seed:      seed,
		GoVersion: runtime.Version(),
		Current:   perfSection{Label: label},
	}
	if baselinePath != "" {
		base, err := loadPerfBaseline(baselinePath)
		if err != nil {
			return err
		}
		report.Baseline = base
	}
	for _, nd := range deviceList {
		for _, nr := range requestList {
			for _, router := range routers {
				start := time.Now()
				run, err := perfCell(nd, nr, router, seed)
				if err != nil {
					return fmt.Errorf("perf %dx%d/%s: %w", nd, nr, router, err)
				}
				report.Current.Runs = append(report.Current.Runs, run)
				fmt.Fprintf(os.Stderr, "perf %4d dev x %6d req %-10s %10.1f ms (%s)\n",
					nd, nr, router, run.WallMS, time.Since(start).Round(time.Millisecond))
			}
		}
	}
	if report.Baseline != nil {
		report.Speedups = perfSpeedups(report.Baseline.Runs, report.Current.Runs)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, coreArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	os.Stdout.Write(data)
	return nil
}

// perfControl builds the control-plane configuration of a controller-on
// perf cell: a threshold controller ticking 64 times over the stream's
// expected span, with an 8-slot warm pool it may actually scale into —
// the overhead number must include real actuation, not just idle ticks.
func perfControl(devices, requests int, seed uint64) (*cluster.ControlConfig, error) {
	span := float64(requests) / (perfDeviceRate * float64(devices))
	interval := span / 64
	warm, err := perfDevices(8, seed+1000)
	if err != nil {
		return nil, err
	}
	return &cluster.ControlConfig{
		Controller:  control.NewThreshold(),
		Interval:    interval,
		Warm:        warm,
		WarmupDelay: interval / 2,
		SLOLatency:  10,
	}, nil
}

// ctrlCell measures one controller-overhead cell: the identical fleet
// and stream timed with the control plane detached and attached.
func ctrlCell(devices, requests int, router string, seed uint64) (ctrlRun, error) {
	run := ctrlRun{Devices: devices, Requests: requests, Router: router}
	reqs := perfStream(requests, devices, seed)
	reps := 1
	if requests < 10000 {
		reps = 3
	}
	measure := func(withCtl bool) (float64, *cluster.Outcome, error) {
		best := 0.0
		var kept *cluster.Outcome
		for rep := 0; rep < reps; rep++ {
			specs, err := perfDevices(devices, seed)
			if err != nil {
				return 0, nil, err
			}
			r, err := cluster.RouterByName(router)
			if err != nil {
				return 0, nil, err
			}
			cfg := cluster.Config{Devices: specs, Router: r, Seed: seed}
			if withCtl {
				if cfg.Control, err = perfControl(devices, requests, seed); err != nil {
					return 0, nil, err
				}
			}
			fleet, err := cluster.New(cfg)
			if err != nil {
				return 0, nil, err
			}
			start := time.Now()
			out, err := fleet.Run(reqs)
			wall := float64(time.Since(start).Nanoseconds()) / 1e6
			if err != nil {
				return 0, nil, err
			}
			if rep == 0 || wall < best {
				best = wall
			}
			if rep == 0 {
				kept = out
			}
		}
		return best, kept, nil
	}
	off, _, err := measure(false)
	if err != nil {
		return run, err
	}
	on, out, err := measure(true)
	if err != nil {
		return run, err
	}
	run.OffMS, run.OnMS = off, on
	if off > 0 {
		run.OverheadPct = round2((on - off) / off * 100)
	}
	if out.Control != nil {
		run.Ticks = out.Control.Ticks
		run.ScaleUps = out.Control.ScaleUps
		run.ScaleDowns = out.Control.ScaleDowns
	}
	return run, nil
}

// runControllerSweep measures the controller-overhead cells and writes
// (or merges into) BENCH_core.json: when mergePath names an existing
// report, its baseline/current/speedup sections are preserved and only
// the controller_overhead section is replaced.
func runControllerSweep(deviceList, requestList []int, routers []string, seed uint64, mergePath, outDir string) error {
	report := perfReport{
		Schema:    "fasttts-bench-core/v1",
		Seed:      seed,
		GoVersion: runtime.Version(),
		Current:   perfSection{Label: "event-heap"},
	}
	if mergePath != "" {
		data, err := os.ReadFile(mergePath)
		if err != nil {
			return fmt.Errorf("perf merge: %w", err)
		}
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("perf merge %s: %w", mergePath, err)
		}
	}
	report.ControllerOverhead = nil
	for _, nd := range deviceList {
		for _, nr := range requestList {
			for _, router := range routers {
				start := time.Now()
				run, err := ctrlCell(nd, nr, router, seed)
				if err != nil {
					return fmt.Errorf("perf-controller %dx%d/%s: %w", nd, nr, router, err)
				}
				report.ControllerOverhead = append(report.ControllerOverhead, run)
				fmt.Fprintf(os.Stderr, "ctrl %4d dev x %6d req %-10s off %9.1f ms  on %9.1f ms  %+6.1f%% (%s)\n",
					nd, nr, router, run.OffMS, run.OnMS, run.OverheadPct, time.Since(start).Round(time.Millisecond))
			}
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, coreArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	os.Stdout.Write(data)
	return nil
}

// parCell measures one parallel-scaling cell: identical fleet, stream,
// and seed to the router sweep, run on the engine the shard count
// selects.
func parCell(devices, requests, shards int, router string, seed uint64) (parRun, error) {
	reps := 1
	if requests < 10000 {
		reps = 3
	}
	run := parRun{Devices: devices, Requests: requests, Router: router, Shards: shards}
	reqs := perfStream(requests, devices, seed)
	for rep := 0; rep < reps; rep++ {
		specs, err := perfDevices(devices, seed)
		if err != nil {
			return run, err
		}
		r, err := cluster.RouterByName(router)
		if err != nil {
			return run, err
		}
		fleet, err := cluster.New(cluster.Config{Devices: specs, Router: r, Seed: seed, Shards: shards})
		if err != nil {
			return run, err
		}
		start := time.Now()
		out, err := fleet.Run(reqs)
		wall := time.Since(start)
		if err != nil {
			return run, err
		}
		ms := float64(wall.Nanoseconds()) / 1e6
		if rep == 0 || ms < run.WallMS {
			run.WallMS = ms
		}
		if rep == 0 {
			for _, res := range out.Results {
				if !res.Rejected {
					run.Served++
				}
			}
		}
	}
	if run.WallMS > 0 {
		run.EventsPerSec = float64(requests) / (run.WallMS / 1e3)
	}
	return run, nil
}

// runParallelSweep measures the sharded engine's wall-clock scaling
// across shard counts and writes (or merges into) BENCH_core.json: when
// mergePath names an existing report, its other sections are preserved
// and only parallel_scaling is replaced. Shard count 1 (the sequential
// engine) is always measured first per (devices, requests, router) cell
// as the speedup denominator; the serving results themselves are
// bit-identical at every shard count, so served counts must agree across
// a cell's rows — the sweep fails loudly if they do not.
func runParallelSweep(deviceList, requestList, shardList []int, routers []string, seed uint64, mergePath, outDir string) error {
	report := perfReport{
		Schema:    "fasttts-bench-core/v1",
		Seed:      seed,
		GoVersion: runtime.Version(),
		Current:   perfSection{Label: "event-heap"},
	}
	if mergePath != "" {
		data, err := os.ReadFile(mergePath)
		if err != nil {
			return fmt.Errorf("perf merge: %w", err)
		}
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("perf merge %s: %w", mergePath, err)
		}
	}
	shards := shardList
	if len(shards) == 0 || shards[0] != 1 {
		shards = append([]int{1}, shards...)
	}
	sec := &parSection{Cores: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, nd := range deviceList {
		for _, nr := range requestList {
			for _, router := range routers {
				seqMS, seqServed := 0.0, 0
				for _, ns := range shards {
					if ns > nd {
						continue // more shards than devices adds only idle workers
					}
					start := time.Now()
					run, err := parCell(nd, nr, ns, router, seed)
					if err != nil {
						return fmt.Errorf("perf-parallel %dx%d/%s@%d: %w", nd, nr, router, ns, err)
					}
					if ns == 1 {
						seqMS, seqServed = run.WallMS, run.Served
					} else if run.Served != seqServed {
						return fmt.Errorf("perf-parallel %dx%d/%s@%d: served %d != sequential %d (engines must be bit-identical)",
							nd, nr, router, ns, run.Served, seqServed)
					}
					if seqMS > 0 && run.WallMS > 0 {
						run.SpeedupVsSeq = round2(seqMS / run.WallMS)
					}
					sec.Runs = append(sec.Runs, run)
					fmt.Fprintf(os.Stderr, "par  %4d dev x %6d req %-10s @%2d shards %10.1f ms  %5.2fx (%s)\n",
						nd, nr, router, ns, run.WallMS, run.SpeedupVsSeq, time.Since(start).Round(time.Millisecond))
				}
			}
		}
	}
	report.ParallelScaling = sec
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, coreArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	os.Stdout.Write(data)
	return nil
}

// loadPerfBaseline reads a previous report and carries its "current"
// section forward as the new baseline.
func loadPerfBaseline(path string) (*perfSection, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf baseline: %w", err)
	}
	var prev perfReport
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("perf baseline %s: %w", path, err)
	}
	return &perfSection{Label: prev.Current.Label, Runs: prev.Current.Runs}, nil
}

// perfSpeedups computes baseline/current wall-time ratios for every
// (devices, requests) cell present in both sections.
func perfSpeedups(baseline, current []perfRun) []perfSpeedup {
	type cell struct{ d, r int }
	base := make(map[cell]map[string]float64)
	for _, b := range baseline {
		c := cell{b.Devices, b.Requests}
		if base[c] == nil {
			base[c] = make(map[string]float64)
		}
		base[c][b.Router] = b.WallMS
	}
	var out []perfSpeedup
	seen := make(map[cell]bool)
	for _, cur := range current {
		c := cell{cur.Devices, cur.Requests}
		if seen[c] || base[c] == nil {
			continue
		}
		seen[c] = true
		sp := perfSpeedup{Devices: c.d, Requests: c.r, ByRouter: make(map[string]float64)}
		for _, cc := range current {
			if cc.Devices != c.d || cc.Requests != c.r || cc.WallMS <= 0 {
				continue
			}
			bms, ok := base[c][cc.Router]
			if !ok {
				continue
			}
			ratio := bms / cc.WallMS
			sp.ByRouter[cc.Router] = round2(ratio)
			if sp.Min == 0 || ratio < sp.Min {
				sp.Min = ratio
			}
			if ratio > sp.Max {
				sp.Max = ratio
			}
		}
		if len(sp.ByRouter) == 0 {
			continue
		}
		sp.Min, sp.Max = round2(sp.Min), round2(sp.Max)
		out = append(out, sp)
	}
	return out
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// parseIntList parses a comma-separated integer list flag.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad list entry %q (want positive integers)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseRouterList validates a comma-separated router list flag.
func parseRouterList(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := cluster.RouterByName(part); err != nil {
			return nil, err
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty router list")
	}
	return out, nil
}
