// Command fastttsbench regenerates the paper's evaluation figures from
// the simulated serving stack and prints (or writes) each as TSV. It is
// also the scenario-regression runner: -scenarios sweeps the named
// workload-scenario matrix (catalog × server/cluster), checks every
// trace against the committed goldens, and emits BENCH_scenarios.json
// for the CI conformance gate.
//
// Usage:
//
//	fastttsbench -fig all                 # every figure, to stdout
//	fastttsbench -fig 12 -problems 12     # one figure, bigger sample
//	fastttsbench -fig 13 -out results/    # write results/fig13.tsv
//	fastttsbench -list                    # list figure IDs and scenarios
//	fastttsbench -scenarios -golden testdata/golden -out .
//	                                      # regression sweep -> ./BENCH_scenarios.json,
//	                                      # nonzero exit on any golden mismatch
//	fastttsbench -metrics -out .          # streaming-sketch error sweep -> ./BENCH_metrics.json,
//	                                      # nonzero exit past the documented error bound
//	fastttsbench -trace -out .            # flight-recorder sweep -> ./BENCH_trace.json + ./trace.json,
//	                                      # nonzero exit past the overhead or attribution-sum gate
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fasttts"
	"fasttts/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure ID (e.g. 12, 17r) or 'all'")
		problems = flag.Int("problems", 0, "problems per dataset (0 = figure default)")
		seed     = flag.Uint64("seed", 42, "root random seed")
		maxN     = flag.Int("maxn", 512, "cap for beam-count sweeps")
		out      = flag.String("out", "", "directory to write fig<ID>.<format> files (default stdout)")
		format   = flag.String("format", "tsv", "output format: tsv or jsonl")
		list     = flag.Bool("list", false, "list available figures and scenarios, then exit")

		scenarios = flag.Bool("scenarios", false, "run the scenario-regression sweep instead of figures")
		golden    = flag.String("golden", "", "golden-trace directory to check scenario runs against (e.g. testdata/golden)")
		requests  = flag.Int("requests", 0, "scenario stream length (0 = scenario default)")
		cache     = flag.Bool("cache", false, "run the KV memory-plane cache sweep (router x capacity matrix) instead of figures")
		strategyF = flag.Bool("strategy", false, "run the test-time-compute strategy sweep (scenario x strategy matrix) instead of figures")
		metricsF  = flag.Bool("metrics", false, "run the streaming-metrics sketch-vs-exact sweep (synthetic streams + scenario catalog) instead of figures")
		traceF    = flag.Bool("trace", false, "run the flight-recorder trace sweep (attribution exactness on the catalog + recorder overhead) instead of figures")

		perf         = flag.Bool("perf", false, "run the fleet-core perf sweep instead of figures")
		perfDevs     = flag.String("perf-devices", "1,8,64,256,1024", "comma-separated fleet sizes for -perf")
		perfReqs     = flag.String("perf-requests", "1000,10000,100000", "comma-separated stream lengths for -perf")
		perfRouters  = flag.String("perf-routers", "rr,least-work,jsq,p2c,prefix", "comma-separated routers for -perf")
		perfLabel    = flag.String("perf-label", "event-heap", "label for the -perf measurement set")
		perfBaseline = flag.String("perf-baseline", "", "previous BENCH_core.json whose 'current' runs become this report's baseline")
		perfCtl      = flag.Bool("perf-controller", false, "with -perf: measure controller-overhead cells (fleet step cost with the control plane on vs off) instead of the router sweep")
		perfMerge    = flag.String("perf-merge", "", "with -perf-controller or -perf-parallel: existing BENCH_core.json whose other sections are preserved while the measured section is replaced")
		perfPar      = flag.Bool("perf-parallel", false, "with -perf: measure sharded-engine wall-clock scaling across -perf-shards instead of the router sweep")
		perfShards   = flag.String("perf-shards", "1,2,4,8", "comma-separated shard counts for -perf-parallel (1 = sequential engine, always measured as the speedup base)")
	)
	flag.Parse()

	if *list {
		for _, f := range bench.All() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		for _, f := range bench.Extensions() {
			fmt.Printf("%-4s %s (extension)\n", f.ID, f.Title)
		}
		for _, s := range fasttts.Scenarios() {
			fmt.Printf("%-12s %s (scenario)\n", s.Name, s.Description)
		}
		return
	}

	if *perf {
		devList, err := parseIntList(*perfDevs)
		if err != nil {
			fatal(fmt.Errorf("-perf-devices: %w", err))
		}
		reqList, err := parseIntList(*perfReqs)
		if err != nil {
			fatal(fmt.Errorf("-perf-requests: %w", err))
		}
		routers, err := parseRouterList(*perfRouters)
		if err != nil {
			fatal(fmt.Errorf("-perf-routers: %w", err))
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
		}
		if *perfCtl {
			if err := runControllerSweep(devList, reqList, routers, *seed, *perfMerge, *out); err != nil {
				fatal(err)
			}
			return
		}
		if *perfPar {
			shardList, err := parseIntList(*perfShards)
			if err != nil {
				fatal(fmt.Errorf("-perf-shards: %w", err))
			}
			if err := runParallelSweep(devList, reqList, shardList, routers, *seed, *perfMerge, *out); err != nil {
				fatal(err)
			}
			return
		}
		if err := runPerfSweep(devList, reqList, routers, *seed, *perfLabel, *perfBaseline, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *scenarios {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := runScenarioRegress(*golden, *out, *requests, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *cache {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := runCacheSweep(*out, *requests, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *strategyF {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := runStrategySweep(*out, *requests, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *traceF {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := runTraceSweep(*out, *requests, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *metricsF {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := runMetricsSweep(*out, *requests, *seed); err != nil {
			fatal(err)
		}
		return
	}

	opts := bench.RunOpts{Problems: *problems, Seed: *seed, MaxN: *maxN}
	var figures []bench.Figure
	switch *fig {
	case "all":
		figures = bench.All()
	case "extensions":
		figures = bench.Extensions()
	default:
		for _, id := range strings.Split(*fig, ",") {
			f, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figures = append(figures, f)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	render := func(rep *bench.Report) string {
		if *format == "jsonl" {
			return rep.JSONL()
		}
		return rep.TSV()
	}
	if *format != "tsv" && *format != "jsonl" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	for _, f := range figures {
		start := time.Now()
		rep, err := f.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", f.ID, err))
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if *out != "" {
			path := filepath.Join(*out, "fig"+f.ID+"."+*format)
			if err := os.WriteFile(path, []byte(render(rep)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%s)\n", path, elapsed)
		} else {
			fmt.Print(render(rep))
			fmt.Printf("# (generated in %s)\n\n", elapsed)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastttsbench:", err)
	os.Exit(1)
}
