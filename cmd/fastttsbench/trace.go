package main

// Trace-sweep mode: price the span flight recorder and prove the
// latency-attribution contract on the full scenario catalog, emitting
// BENCH_trace.json plus a representative Perfetto trace.json:
//
//   - attribution cells: every catalog scenario runs on the cluster
//     target with the recorder attached; the span stream must pass
//     lifecycle verification and every finished request's attribution
//     components (queue + service + re-prefill + straggler + preemption)
//     must sum to its measured wall latency within 1 ulp, with the
//     attribution's wall agreeing bit-exactly with the fleet result.
//   - overhead cells: recorder-off vs recorder-on wall-clock on long
//     streams, best-of-N so scheduler noise cancels; recorder-on must
//     cost at most 10% — tracing is an always-affordable observer.
import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"fasttts"
)

// traceArtifact is the BENCH_trace.json filename; tracePerfetto the
// companion Perfetto export of the representative scenario.
const (
	traceArtifact = "BENCH_trace.json"
	tracePerfetto = "trace.json"
)

// traceOverheadRounds is the best-of-N repetition count per engine.
const traceOverheadRounds = 5

// traceOverheadGate is the maximum tolerated recorder-on wall-clock
// overhead on the perf cells.
const traceOverheadGate = 0.10

// traceAttrCell is one scenario's attribution-exactness measurement.
type traceAttrCell struct {
	Scenario   string `json:"scenario"`
	Requests   int    `json:"requests"`
	Served     int    `json:"served"`
	Attributed int    `json:"attributed"`
	Spans      int    `json:"spans"`
	// Mismatches counts requests whose components missed their wall
	// latency by more than 1 ulp or disagreed with the fleet result.
	Mismatches int   `json:"mismatches"`
	SumExact   bool  `json:"sum_exact"`
	ElapsedMS  int64 `json:"elapsed_ms"`
}

// traceOverheadCell is one scenario's recorder-off vs recorder-on
// timing (best-of-N wall clock per engine).
type traceOverheadCell struct {
	Scenario string  `json:"scenario"`
	Requests int     `json:"requests"`
	Spans    int     `json:"spans"`
	OffMS    float64 `json:"off_ms"`
	OnMS     float64 `json:"on_ms"`
	// Overhead is OnMS/OffMS − 1 (negative means on measured faster —
	// pure timing noise).
	Overhead float64 `json:"overhead"`
	OK       bool    `json:"ok"`
}

// traceReport is the BENCH_trace.json document.
type traceReport struct {
	Schema      string              `json:"schema"`
	Seed        uint64              `json:"seed"`
	Requests    int                 `json:"requests"` // 0 = scenario defaults (attribution cells)
	Attribution []traceAttrCell     `json:"attribution"`
	Overhead    []traceOverheadCell `json:"overhead"`
	Verdict     string              `json:"verdict"`
	OK          bool                `json:"ok"`
}

// runTraceSweep measures the catalog and writes the report plus the
// representative Perfetto trace; it returns an error when the overhead
// or attribution-sum gate fails.
func runTraceSweep(outDir string, requests int, seed uint64) error {
	report := traceReport{
		Schema:   "fasttts-bench-trace/v1",
		Seed:     seed,
		Requests: requests,
	}

	// Attribution gate: the whole catalog, cluster target.
	badAttr := 0
	for _, info := range fasttts.Scenarios() {
		cell, err := measureTraceAttr(info.Name, requests, seed)
		if err != nil {
			return fmt.Errorf("trace sweep %s: %w", info.Name, err)
		}
		if !cell.SumExact {
			badAttr++
		}
		report.Attribution = append(report.Attribution, cell)
	}

	// Overhead gate: long streams so per-run wall clock dwarfs timer
	// noise; best-of-N per engine cancels the rest.
	overheadReqs := requests
	if overheadReqs < 1200 {
		overheadReqs = 1200
	}
	badOverhead := 0
	for _, name := range []string{"steady", "heavy-tail", "fleet-churn"} {
		cell, err := measureTraceOverhead(name, overheadReqs, seed)
		if err != nil {
			return fmt.Errorf("trace sweep %s: %w", name, err)
		}
		if !cell.OK {
			badOverhead++
		}
		report.Overhead = append(report.Overhead, cell)
	}

	report.OK = badAttr == 0 && badOverhead == 0
	worst := 0.0
	for _, c := range report.Overhead {
		if c.Overhead > worst {
			worst = c.Overhead
		}
	}
	report.Verdict = fmt.Sprintf(
		"attribution exact on %d/%d scenarios (1-ulp component sums); worst recorder-on overhead %.1f%% (gate %.0f%%)",
		len(report.Attribution)-badAttr, len(report.Attribution), 100*worst, 100*traceOverheadGate)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, traceArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		if err := writeTracePerfetto(filepath.Join(outDir, tracePerfetto), requests, seed); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}
	if !report.OK {
		return fmt.Errorf("trace sweep: gate failed — %s", report.Verdict)
	}
	return nil
}

// measureTraceAttr runs one scenario with the recorder attached and
// checks the attribution contract request by request.
func measureTraceAttr(name string, requests int, seed uint64) (traceAttrCell, error) {
	start := time.Now()
	rec := fasttts.NewRecorder()
	run, err := fasttts.RunScenario(name, fasttts.ScenarioOptions{
		Target:   fasttts.ScenarioCluster,
		Requests: requests,
		Seed:     seed,
		Trace:    rec,
	})
	if err != nil {
		return traceAttrCell{}, err
	}
	cell := traceAttrCell{
		Scenario: name,
		Requests: len(run.Requests),
		Served:   run.Stats.Served,
		Spans:    rec.SpanCount(),
	}
	if err := rec.Verify(); err != nil {
		return traceAttrCell{}, fmt.Errorf("span lifecycle invariants: %w", err)
	}
	byTag := map[int]fasttts.FleetResult{}
	for _, r := range run.Fleet.Results {
		byTag[r.Tag] = r
	}
	for _, a := range rec.Attribution() {
		cell.Attributed++
		sum := (((a.Queue + a.Service) + a.Reprefill) + a.Straggler) + a.Preemption
		tol := math.Nextafter(math.Abs(a.Wall), math.Inf(1)) - math.Abs(a.Wall)
		if math.Abs(sum-a.Wall) > tol {
			cell.Mismatches++
			continue
		}
		if r, ok := byTag[a.Tag]; !ok || r.Rejected || a.Wall != r.WallLatency {
			cell.Mismatches++
		}
	}
	cell.SumExact = cell.Mismatches == 0 && cell.Attributed == cell.Served
	cell.ElapsedMS = time.Since(start).Milliseconds()
	return cell, nil
}

// measureTraceOverhead times one scenario recorder-off vs recorder-on,
// interleaved best-of-N.
func measureTraceOverhead(name string, requests int, seed uint64) (traceOverheadCell, error) {
	cell := traceOverheadCell{Scenario: name, Requests: requests}
	runOnce := func(rec *fasttts.Recorder) (float64, error) {
		start := time.Now()
		if _, err := fasttts.RunScenario(name, fasttts.ScenarioOptions{
			Target:   fasttts.ScenarioCluster,
			Requests: requests,
			Seed:     seed,
			Trace:    rec,
		}); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Microseconds()) / 1e3, nil
	}
	// Interleave off/on rounds so clock-frequency and cache drift hit
	// both engines alike; best-of-N per engine drops the rest.
	cell.OffMS, cell.OnMS = math.Inf(1), math.Inf(1)
	for i := 0; i < traceOverheadRounds; i++ {
		off, err := runOnce(nil)
		if err != nil {
			return cell, err
		}
		if off < cell.OffMS {
			cell.OffMS = off
		}
		rec := fasttts.NewRecorder()
		on, err := runOnce(rec)
		if err != nil {
			return cell, err
		}
		if on < cell.OnMS {
			cell.OnMS = on
		}
		cell.Spans = rec.SpanCount()
	}
	cell.Overhead = cell.OnMS/cell.OffMS - 1
	cell.OK = cell.Overhead <= traceOverheadGate
	return cell, nil
}

// writeTracePerfetto exports a representative traced run (fleet-churn:
// failures, requeues, heterogeneous devices) for the CI artifact and
// for loading into ui.perfetto.dev.
func writeTracePerfetto(path string, requests int, seed uint64) error {
	rec := fasttts.NewRecorder()
	if _, err := fasttts.RunScenario("fleet-churn", fasttts.ScenarioOptions{
		Target:   fasttts.ScenarioCluster,
		Requests: requests,
		Seed:     seed,
		Trace:    rec,
	}); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
