package main

// Scenario-regression mode: sweep the named workload-scenario matrix
// (every catalog scenario × server and cluster targets), compare each
// run's canonical trace against the committed goldens, and emit
// BENCH_scenarios.json — the artifact the CI scenario-conformance gate
// consumes. Any golden mismatch (or missing golden when -golden is set)
// makes the sweep fail with a nonzero exit.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fasttts"
	"fasttts/internal/trace"
)

// scenariosArtifact is the BENCH_scenarios.json filename.
const scenariosArtifact = "BENCH_scenarios.json"

// scenarioCell is one matrix entry of the regression report.
type scenarioCell struct {
	Scenario      string  `json:"scenario"`
	Target        string  `json:"target"`
	Requests      int     `json:"requests"`
	Served        int     `json:"served"`
	Rejected      int     `json:"rejected"`
	Makespan      float64 `json:"makespan"`
	MeanLatency   float64 `json:"mean_latency"`
	P99Latency    float64 `json:"p99_latency"`
	Goodput       float64 `json:"goodput"`
	SLOAttainment float64 `json:"slo_attainment"`
	Requeues      int     `json:"requeues"`
	FailedDevices int     `json:"failed_devices"`
	ElapsedMS     int64   `json:"elapsed_ms"`
	// Golden is the conformance verdict: "match", "mismatch", "missing",
	// or "skipped" (no -golden directory given). Detail carries the first
	// divergence on mismatch.
	Golden string `json:"golden"`
	Detail string `json:"detail,omitempty"`
}

// scenarioReport is the BENCH_scenarios.json document.
type scenarioReport struct {
	Schema    string         `json:"schema"`
	Seed      uint64         `json:"seed"`
	GoldenDir string         `json:"golden_dir,omitempty"`
	Cells     []scenarioCell `json:"cells"`
	OK        bool           `json:"ok"`
}

// runScenarioRegress sweeps the matrix and writes the report; it returns
// an error when any cell fails conformance.
func runScenarioRegress(goldenDir, outDir string, requests int, seed uint64) error {
	report := scenarioReport{Schema: "fasttts-bench-scenarios/v1", Seed: seed, GoldenDir: goldenDir, OK: true}
	for _, info := range fasttts.Scenarios() {
		for _, target := range []fasttts.ScenarioTarget{fasttts.ScenarioServer, fasttts.ScenarioCluster} {
			start := time.Now()
			run, err := fasttts.RunScenario(info.Name, fasttts.ScenarioOptions{
				Target: target, Requests: requests, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("scenario %s/%s: %w", info.Name, target, err)
			}
			got, err := run.TraceJSONL()
			if err != nil {
				return fmt.Errorf("scenario %s/%s: %w", info.Name, target, err)
			}
			cell := scenarioCell{
				Scenario:      run.Name,
				Target:        string(target),
				Requests:      len(run.Requests),
				Served:        run.Stats.Served,
				Rejected:      run.Stats.Rejected,
				Makespan:      run.Stats.Makespan,
				MeanLatency:   run.Stats.MeanLatency,
				P99Latency:    run.Stats.P99Latency,
				Goodput:       run.Stats.Goodput,
				SLOAttainment: run.Stats.SLOAttainment,
				ElapsedMS:     time.Since(start).Milliseconds(),
				Golden:        "skipped",
			}
			if run.FleetStats != nil {
				cell.Requeues = run.FleetStats.Requeues
				cell.FailedDevices = run.FleetStats.FailedDevices
			}
			if goldenDir != "" {
				cell.Golden, cell.Detail = conform(goldenDir, run.Name, target, got)
				if cell.Golden != "match" {
					report.OK = false
				}
			}
			report.Cells = append(report.Cells, cell)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, scenariosArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	} else {
		os.Stdout.Write(data)
	}
	if !report.OK {
		return fmt.Errorf("scenario conformance failed (see %s cells with golden != match; regenerate intentional changes with `make golden`)", scenariosArtifact)
	}
	return nil
}

// conform compares a produced trace against its committed golden.
func conform(goldenDir, name string, target fasttts.ScenarioTarget, got []byte) (verdict, detail string) {
	path := filepath.Join(goldenDir, fmt.Sprintf("%s.%s.jsonl", name, target))
	want, err := os.ReadFile(path)
	if err != nil {
		return "missing", fmt.Sprintf("no golden at %s", path)
	}
	if ok, detail := trace.Conform(got, want); !ok {
		return "mismatch", detail
	}
	return "match", ""
}
