package main

// Metrics-sweep mode: quantify the streaming quantile sketch against the
// exact sort-based path and prove the constant-memory claim. The sweep
// emits BENCH_metrics.json with two kinds of cells:
//
//   - synthetic: each internal/scenario metrics stream (uniform,
//     heavy-tail, bimodal, and the 10M-request mega-steady) is generated
//     twice — once folded sample-by-sample into a metrics.ServeAccum
//     with heap usage measured around the pass (the bounded-RSS
//     evidence: 10M requests, ~20 KiB of aggregation state), and once
//     into a plain wall-latency buffer for the exact reference;
//   - scenario: every catalog scenario runs on the cluster target and
//     its served stream is summarized through both paths.
//
// Every cell asserts the sketch's p50/p95/p99 and mean relative error
// against the documented bound (metrics.SketchRelErr); any violation —
// or an unbounded heap on mega-steady — fails the report (OK=false,
// nonzero exit). CI commits the artifact so the error margins are
// reviewable release over release.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fasttts"
	"fasttts/internal/metrics"
	"fasttts/internal/scenario"
)

// metricsArtifact is the BENCH_metrics.json filename.
const metricsArtifact = "BENCH_metrics.json"

// metricsHeapBudget bounds the streaming pass's retained-heap growth.
// The accumulator itself is ~20 KiB; the budget leaves room for
// allocator and runtime noise while still refuting any O(requests)
// retention (10M retained samples would be hundreds of MiB).
const metricsHeapBudget = 8 << 20

// metricsCell is one stream × path comparison.
type metricsCell struct {
	Stream   string `json:"stream"`
	Kind     string `json:"kind"` // synthetic or scenario
	Requests int    `json:"requests"`
	Served   int    `json:"served"`
	Rejected int    `json:"rejected"`

	ExactP50  float64 `json:"exact_p50"`
	ExactP95  float64 `json:"exact_p95"`
	ExactP99  float64 `json:"exact_p99"`
	ExactMean float64 `json:"exact_mean"`

	SketchP50  float64 `json:"sketch_p50"`
	SketchP95  float64 `json:"sketch_p95"`
	SketchP99  float64 `json:"sketch_p99"`
	SketchMean float64 `json:"sketch_mean"`

	RelErrP50  float64 `json:"rel_err_p50"`
	RelErrP95  float64 `json:"rel_err_p95"`
	RelErrP99  float64 `json:"rel_err_p99"`
	RelErrMean float64 `json:"rel_err_mean"`

	// AccumStateBytes is the streaming accumulator's constant footprint;
	// HeapDeltaBytes the measured retained-heap growth across the
	// streaming pass (synthetic cells only; -1 when not measured).
	AccumStateBytes int   `json:"accum_state_bytes"`
	HeapDeltaBytes  int64 `json:"heap_delta_bytes"`
	ElapsedMS       int64 `json:"elapsed_ms"`
	OK              bool  `json:"ok"`
}

// metricsReport is the BENCH_metrics.json document.
type metricsReport struct {
	Schema    string        `json:"schema"`
	Seed      uint64        `json:"seed"`
	Bound     float64       `json:"bound"`
	Cells     []metricsCell `json:"cells"`
	MaxRelErr float64       `json:"max_rel_err"`
	Verdict   string        `json:"verdict"`
	OK        bool          `json:"ok"`
}

// relErr is the cell's error metric: relative when the exact value is
// inside the sketch's accuracy range, absolute-vs-1µs below it.
func relErr(sketch, exact float64) float64 {
	if exact <= 1e-6 {
		return math.Abs(sketch-exact) / 1e-6
	}
	return math.Abs(sketch-exact) / exact
}

// fillComparison computes the sketch-vs-exact columns and the cell's
// bound check from an exact wall-latency reference.
func (c *metricsCell) fillComparison(walls []float64, acc *metrics.ServeAccum, bound float64) {
	st := acc.Stats()
	c.Served = st.Served
	c.Rejected = st.Rejected
	c.SketchP50, c.SketchP95, c.SketchP99 = st.P50Latency, st.P95Latency, st.P99Latency
	c.SketchMean = st.MeanLatency
	c.AccumStateBytes = acc.StateBytes()

	if len(walls) == 0 {
		c.OK = st.Served == 0
		return
	}
	var sum float64
	for _, w := range walls {
		sum += w
	}
	c.ExactP50 = metrics.Percentile(walls, 50)
	c.ExactP95 = metrics.Percentile(walls, 95)
	c.ExactP99 = metrics.Percentile(walls, 99)
	c.ExactMean = sum / float64(len(walls))

	c.RelErrP50 = relErr(c.SketchP50, c.ExactP50)
	c.RelErrP95 = relErr(c.SketchP95, c.ExactP95)
	c.RelErrP99 = relErr(c.SketchP99, c.ExactP99)
	c.RelErrMean = relErr(c.SketchMean, c.ExactMean)
	c.OK = st.Served == len(walls) &&
		c.RelErrP50 <= bound && c.RelErrP95 <= bound &&
		c.RelErrP99 <= bound && c.RelErrMean <= bound
}

// runSyntheticCell measures one synthetic stream: a streaming pass under
// heap instrumentation, then a buffered exact reference pass.
func runSyntheticCell(m scenario.MetricsStream, requests int, seed uint64, bound float64) metricsCell {
	n := m.Requests
	if requests > 0 {
		n = requests
	}
	cell := metricsCell{Stream: m.Name, Kind: "synthetic", Requests: n}
	start := time.Now()

	// Streaming pass: the only retained state is the accumulator, and the
	// heap delta across the pass proves it.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	acc := metrics.NewServeAccum(0)
	m.Emit(seed, requests, acc.Observe)
	runtime.GC()
	runtime.ReadMemStats(&after)
	cell.HeapDeltaBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)

	// Exact reference pass: regenerate the identical stream, retaining
	// only the wall latencies the exact percentiles need.
	walls := make([]float64, 0, n)
	m.Emit(seed, requests, func(s metrics.ServeSample) {
		if !s.Rejected {
			walls = append(walls, s.Finish-s.Arrival)
		}
	})
	cell.fillComparison(walls, acc, bound)
	if cell.HeapDeltaBytes > metricsHeapBudget {
		cell.OK = false
	}
	cell.ElapsedMS = time.Since(start).Milliseconds()
	return cell
}

// runScenarioCell summarizes one catalog scenario's served stream
// through both paths.
func runScenarioCell(name string, seed uint64, bound float64) (metricsCell, error) {
	cell := metricsCell{Stream: name, Kind: "scenario", HeapDeltaBytes: -1}
	start := time.Now()
	run, err := fasttts.RunScenario(name, fasttts.ScenarioOptions{
		Target: fasttts.ScenarioCluster,
		Seed:   seed,
	})
	if err != nil {
		return cell, fmt.Errorf("metrics sweep %s: %w", name, err)
	}
	cell.Requests = len(run.Requests)
	acc := metrics.NewServeAccum(0)
	var walls []float64
	for _, r := range run.Fleet.Results {
		sm := metrics.ServeSample{
			Arrival: r.ArrivalTime, Start: r.StartTime, Finish: r.FinishTime,
			Tokens: r.UsefulTokens, Rejected: r.Rejected,
		}
		acc.Observe(sm)
		if !r.Rejected {
			walls = append(walls, r.FinishTime-r.ArrivalTime)
		}
	}
	cell.fillComparison(walls, acc, bound)
	cell.ElapsedMS = time.Since(start).Milliseconds()
	return cell, nil
}

// runMetricsSweep measures every synthetic stream and catalog scenario
// and writes the report; it returns an error when any cell violates the
// sketch's documented error bound or the heap budget.
func runMetricsSweep(outDir string, requests int, seed uint64) error {
	report := metricsReport{
		Schema: "fasttts-bench-metrics/v1",
		Seed:   seed,
		Bound:  metrics.SketchRelErr,
		OK:     true,
	}
	for _, m := range scenario.MetricsStreams() {
		cell := runSyntheticCell(m, requests, seed, report.Bound)
		report.Cells = append(report.Cells, cell)
		fmt.Printf("metrics %-18s %8d reqs  p99 err %.5f  heap %+d B  %dms\n",
			cell.Stream, cell.Requests, cell.RelErrP99, cell.HeapDeltaBytes, cell.ElapsedMS)
	}
	for _, sc := range fasttts.Scenarios() {
		cell, err := runScenarioCell(sc.Name, seed, report.Bound)
		if err != nil {
			return err
		}
		report.Cells = append(report.Cells, cell)
		fmt.Printf("metrics %-18s %8d reqs  p99 err %.5f  %dms\n",
			cell.Stream, cell.Requests, cell.RelErrP99, cell.ElapsedMS)
	}
	for _, c := range report.Cells {
		for _, e := range []float64{c.RelErrP50, c.RelErrP95, c.RelErrP99, c.RelErrMean} {
			if e > report.MaxRelErr {
				report.MaxRelErr = e
			}
		}
		if !c.OK {
			report.OK = false
		}
	}
	report.Verdict = fmt.Sprintf(
		"max sketch-vs-exact relative error %.5f across %d cells (bound %.5f); mega-steady streaming heap delta within %d B",
		report.MaxRelErr, len(report.Cells), report.Bound, metricsHeapBudget)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, metricsArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	} else {
		os.Stdout.Write(data)
	}
	if !report.OK {
		return fmt.Errorf("metrics sweep: a cell violated the sketch error bound or heap budget — %s", report.Verdict)
	}
	return nil
}
