package fasttts

import (
	"fmt"

	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/workload"
)

// Request is one queued query for a Server.
type Request struct {
	Problem *Problem
	// ArrivalTime is when the request reaches the server, in seconds on
	// the server clock.
	ArrivalTime float64
	// Priority orders requests under the "priority" policy; larger runs
	// first.
	Priority int
	// Deadline is the absolute SLO deadline on the server clock used by
	// the "deadline" policy; 0 means none.
	Deadline float64
}

// ServedResult is a Result plus queueing telemetry. Result is nil (and
// only then) for requests shed by admission control.
type ServedResult struct {
	*Result
	ArrivalTime float64
	StartTime   float64
	FinishTime  float64
	// QueueDelay = StartTime − ArrivalTime. The embedded Result's Latency
	// is pure device (service) time; WallLatency = FinishTime −
	// ArrivalTime additionally includes queueing and slices the device
	// spent on other tenants.
	QueueDelay  float64
	WallLatency float64
	// Slices counts the device slices the request ran in.
	Slices int
	// UsefulTokens is the request's useful generated output (all decoded
	// tokens minus speculative ones, plus speculative tokens adopted by
	// surviving beams); server-level goodput sums this.
	UsefulTokens int64
	// Width is the effective search width the request was served at: the
	// deployment's configured NumBeams unless the elastic control plane's
	// budget governor narrowed it. 0 for rejected requests.
	Width int
	// Rejected marks requests shed by admission control.
	Rejected bool
	// Tag identifies the request across the stream: its position in the
	// slice passed to Run (and the problem's position in RunClosedLoop),
	// carried through unchanged so completion-ordered results can be
	// correlated with their submissions — the identity the trace
	// record/replay harness keys on.
	Tag int
}

// ServeConfig configures the multi-tenant serving engine on top of a
// deployment Config.
type ServeConfig struct {
	Config
	// Policy names the admission/ordering discipline: "fcfs" (default),
	// "sjf" (shortest predicted remaining work, First-Finish style),
	// "priority", or "deadline" (earliest-deadline-first).
	Policy string
	// MaxInFlight, when positive, sheds arrivals beyond this many
	// admitted unfinished requests (they come back Rejected).
	MaxInFlight int
	// SLOLatency is the per-request wall-latency target in seconds used
	// by Stats; 0 disables SLO accounting.
	SLOLatency float64
	// Metrics selects Stats's aggregation mode: MetricsExact (default)
	// or MetricsStreaming (constant-memory sketch percentiles, <1%
	// relative error). See the package docs' "Streaming metrics".
	Metrics MetricsMode
	// Trace, when non-nil, attaches the span flight recorder: the engine
	// records every request's full lifecycle for Perfetto export and
	// latency attribution without perturbing the run. See Recorder.
	Trace *Recorder
}

// ServeStats aggregates a served request stream (see Server.Stats).
type ServeStats struct {
	Served, Rejected int
	// Makespan is the finish time of the last served request.
	Makespan float64
	// Queue delay is StartTime − ArrivalTime; latency here is wall
	// latency, FinishTime − ArrivalTime.
	MeanQueueDelay, MaxQueueDelay                   float64
	MeanLatency, P50Latency, P95Latency, P99Latency float64
	// Goodput is useful generated tokens per second of makespan.
	Goodput float64
	// SLOAttainment is the fraction of all submitted requests meeting
	// SLOLatency (rejected requests count as misses); 1 when no target
	// is set.
	SLOAttainment float64
	// NonFinite counts served samples excluded from every aggregate
	// because their telemetry was NaN or ±Inf (0 on healthy streams).
	NonFinite int
}

// Server serves a stream of TTS requests with the multi-tenant serving
// engine: an event-driven virtual clock time-slices the device between
// admitted requests at search-iteration granularity, and the paper's
// two-phase preemptible scheduler (§4.1.2) governs speculation — it runs
// only while no other request waits and is preempted the moment one
// arrives. Under the default FCFS policy the engine reproduces the
// sequential scheduler of the paper exactly.
type Server struct {
	inner *core.Server
	slo   float64
	mode  metrics.Mode
}

// NewServer builds an FCFS server for the given deployment configuration.
func NewServer(c Config) (*Server, error) {
	return NewServerWith(ServeConfig{Config: c})
}

// NewServerWith builds a server with an explicit serving configuration.
func NewServerWith(sc ServeConfig) (*Server, error) {
	cc, err := buildCoreConfig(sc.Config)
	if err != nil {
		return nil, err
	}
	cc.Obs = sc.Trace.rec()
	pol, err := sched.PolicyByName(sc.Policy)
	if err != nil {
		return nil, err
	}
	if sc.MaxInFlight > 0 {
		pol = sched.AdmissionLimit{Inner: pol, MaxInFlight: sc.MaxInFlight}
	}
	mode, err := metrics.ParseMode(string(sc.Metrics))
	if err != nil {
		return nil, fmt.Errorf("fasttts: %w", err)
	}
	srv, err := core.NewServerWithPolicy(cc, pol)
	if err != nil {
		return nil, err
	}
	return &Server{inner: srv, slo: sc.SLOLatency, mode: mode}, nil
}

// Run serves an open-loop request stream and returns per-request results
// in completion order (rejected requests appear at their rejection time).
func (s *Server) Run(reqs []Request) ([]ServedResult, error) {
	inner := make([]core.Request, len(reqs))
	for i, r := range reqs {
		inner[i] = core.Request{
			Problem:  r.Problem.inner,
			Arrival:  r.ArrivalTime,
			Priority: r.Priority,
			Deadline: r.Deadline,
			Tag:      i,
		}
	}
	served, err := s.inner.Run(inner)
	if err != nil {
		return nil, err
	}
	return wrapServed(served), nil
}

// RunClosedLoop serves the problems under a fixed-concurrency closed
// loop: concurrency clients each keep one request outstanding and issue
// their next request think seconds after the previous one completes.
func (s *Server) RunClosedLoop(probs []*Problem, concurrency int, think float64) ([]ServedResult, error) {
	inner := make([]*workload.Problem, len(probs))
	for i, p := range probs {
		inner[i] = p.inner
	}
	served, err := s.inner.RunClosedLoop(inner, workload.ClosedLoop{Concurrency: concurrency, Think: think})
	if err != nil {
		return nil, err
	}
	return wrapServed(served), nil
}

// Stats reduces served results to server-level aggregates, applying the
// configured SLOLatency and metrics mode.
func (s *Server) Stats(served []ServedResult) ServeStats {
	samples := make([]metrics.ServeSample, len(served))
	for i, sv := range served {
		samples[i] = metrics.ServeSample{
			Arrival: sv.ArrivalTime, Start: sv.StartTime, Finish: sv.FinishTime,
			Tokens: sv.UsefulTokens, Rejected: sv.Rejected,
		}
	}
	if s.mode == metrics.ModeStreaming {
		return wrapServeStats(metrics.SummarizeServeStreaming(samples, s.slo))
	}
	return wrapServeStats(metrics.SummarizeServe(samples, s.slo))
}

// wrapServeStats converts the internal serve aggregates to the public
// struct (shared by Server.Stats and the fleet stats).
func wrapServeStats(m metrics.ServeStats) ServeStats {
	return ServeStats{
		Served: m.Served, Rejected: m.Rejected,
		Makespan:       m.Makespan,
		MeanQueueDelay: m.MeanQueueDelay, MaxQueueDelay: m.MaxQueueDelay,
		MeanLatency: m.MeanLatency,
		P50Latency:  m.P50Latency, P95Latency: m.P95Latency, P99Latency: m.P99Latency,
		Goodput:       m.Goodput,
		SLOAttainment: m.SLOAttainment,
		NonFinite:     m.NonFinite,
	}
}

// PoissonRequests assigns open-loop Poisson arrival times (mean rate
// requests/second) to the problems, deterministically from the seed.
// It panics if rate is not positive.
func PoissonRequests(probs []*Problem, rate float64, seed uint64) []Request {
	if rate <= 0 {
		panic(fmt.Sprintf("fasttts: PoissonRequests rate must be positive, got %v", rate))
	}
	return withArrivals(probs, workload.PoissonArrivals(len(probs), rate, rng.New(seed).Child("arrivals/poisson")))
}

// UniformRequests assigns evenly spaced arrivals to the problems.
func UniformRequests(probs []*Problem, spacing float64) []Request {
	return withArrivals(probs, workload.UniformArrivals(len(probs), spacing))
}

// BurstRequests releases the problems in bursts of `burst` simultaneous
// requests, gap seconds apart — the adversarial arrival pattern for
// admission control.
func BurstRequests(probs []*Problem, burst int, gap float64) []Request {
	return withArrivals(probs, workload.BurstArrivals(len(probs), burst, gap))
}

// SinusoidalRequests assigns arrivals of a nonhomogeneous Poisson
// process whose rate follows a diurnal cycle, λ(t) = base ·
// (1 + amplitude·sin(2πt/period)), deterministically from the seed —
// the workload shape the elastic control plane's scale-to-fit tracks.
// It panics if base or period is not positive (see
// workload.SinusoidalArrivals).
func SinusoidalRequests(probs []*Problem, base, amplitude, period float64, seed uint64) []Request {
	return withArrivals(probs, workload.SinusoidalArrivals(
		len(probs), base, amplitude, period, rng.New(seed).Child("arrivals/sinusoidal")))
}

// FlashCrowdRequests assigns arrivals of a piecewise-rate Poisson
// process: base requests/second everywhere except the flash-crowd
// window [spikeStart, spikeStart+spikeDur), where the rate is
// base·mult. It panics on a non-positive base or negative mult (see
// workload.FlashCrowdArrivals).
func FlashCrowdRequests(probs []*Problem, base, spikeStart, spikeDur, mult float64, seed uint64) []Request {
	return withArrivals(probs, workload.FlashCrowdArrivals(
		len(probs), base, spikeStart, spikeDur, mult, rng.New(seed).Child("arrivals/flash-crowd")))
}

func withArrivals(probs []*Problem, times []float64) []Request {
	out := make([]Request, len(probs))
	for i, p := range probs {
		out[i] = Request{Problem: p, ArrivalTime: times[i]}
	}
	return out
}

func wrapServed(served []core.ServedResult) []ServedResult {
	out := make([]ServedResult, len(served))
	for i, sv := range served {
		var res *Result
		if sv.Result != nil {
			res = wrapResult(sv.Result)
		}
		out[i] = ServedResult{
			Result:       res,
			ArrivalTime:  sv.Arrival,
			StartTime:    sv.Start,
			FinishTime:   sv.Finish,
			QueueDelay:   sv.QueueDelay,
			WallLatency:  sv.WallLatency,
			Slices:       sv.Slices,
			UsefulTokens: sv.UsefulTokens,
			Width:        sv.Width,
			Rejected:     sv.Rejected,
			Tag:          sv.Tag,
		}
	}
	return out
}
