package fasttts

import "fasttts/internal/core"

// Request is one queued query for a Server.
type Request struct {
	Problem *Problem
	// ArrivalTime is when the request reaches the server, in seconds on
	// the server clock.
	ArrivalTime float64
}

// ServedResult is a Result plus queueing telemetry.
type ServedResult struct {
	*Result
	ArrivalTime float64
	StartTime   float64
	FinishTime  float64
	QueueDelay  float64
}

// Server serves a stream of TTS requests with the paper's two-phase
// preemptible scheduler (§4.1.2): speculative execution runs only while
// the waiting queue is empty and is preempted the moment a request
// arrives, preserving responsiveness.
type Server struct {
	inner *core.Server
}

// NewServer builds a server for the given deployment configuration.
func NewServer(c Config) (*Server, error) {
	cc, err := buildCoreConfig(c)
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(cc)
	if err != nil {
		return nil, err
	}
	return &Server{inner: srv}, nil
}

// Run serves the requests FCFS and returns per-request results.
func (s *Server) Run(reqs []Request) ([]ServedResult, error) {
	inner := make([]core.Request, len(reqs))
	for i, r := range reqs {
		inner[i] = core.Request{Problem: r.Problem.inner, Arrival: r.ArrivalTime}
	}
	served, err := s.inner.Run(inner)
	if err != nil {
		return nil, err
	}
	out := make([]ServedResult, len(served))
	for i, sv := range served {
		res := wrapResult(sv.Result)
		out[i] = ServedResult{
			Result:      res,
			ArrivalTime: sv.Arrival,
			StartTime:   sv.Start,
			FinishTime:  sv.Finish,
			QueueDelay:  sv.QueueDelay,
		}
	}
	return out, nil
}
