package fasttts

// Public-API contract of the span flight recorder: tracing never
// perturbs a run (every committed golden replays byte-identically with
// a recorder attached), traces themselves are deterministic across the
// fleet engines, and the Perfetto/attribution surfaces work end to end.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
)

// TestGoldenScenarioTracesWithRecorder replays every golden with the
// flight recorder attached. The committed bytes must reproduce exactly:
// tracing observes scheduling, it never perturbs it.
func TestGoldenScenarioTracesWithRecorder(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating goldens")
	}
	for _, info := range Scenarios() {
		for _, target := range []ScenarioTarget{ScenarioServer, ScenarioCluster} {
			info, target := info, target
			t.Run(fmt.Sprintf("%s/%s", info.Name, target), func(t *testing.T) {
				rec := NewRecorder()
				run, err := RunScenario(info.Name, ScenarioOptions{Target: target, Trace: rec})
				if err != nil {
					t.Fatal(err)
				}
				got, err := run.TraceJSONL()
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(goldenPath(info.Name, target))
				if err != nil {
					t.Fatalf("missing golden trace: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("attaching a recorder changed the golden trace bytes")
				}
				if rec.SpanCount() == 0 {
					t.Fatal("recorder captured nothing")
				}
				if err := rec.Verify(); err != nil {
					t.Fatalf("span lifecycle invariants violated: %v", err)
				}
				if target == ScenarioCluster {
					if run.FleetStats.Attribution == nil {
						t.Fatal("traced fleet run missing FleetStats.Attribution")
					}
					if run.FleetStats.Attribution.Requests != run.Stats.Served {
						t.Fatalf("attributed %d requests, served %d",
							run.FleetStats.Attribution.Requests, run.Stats.Served)
					}
				}
			})
		}
	}
}

// TestRecorderTraceDeterministicAcrossEngines pins the public half of
// the trace-determinism contract: the Perfetto export bytes are
// identical across runs and across Parallelism settings.
func TestRecorderTraceDeterministicAcrossEngines(t *testing.T) {
	export := func(parallelism int) []byte {
		rec := NewRecorder()
		if _, err := RunScenario("fleet-churn", ScenarioOptions{
			Target: ScenarioCluster, Requests: 20, Seed: 7,
			Parallelism: parallelism, Trace: rec,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := export(0)
	for _, p := range []int{4, -1} {
		if !bytes.Equal(seq, export(p)) {
			t.Fatalf("Perfetto export differs between sequential and Parallelism=%d", p)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal(seq, &doc); err != nil {
		t.Fatalf("Perfetto export is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("Perfetto export missing traceEvents")
	}
}

// TestRecorderAttribution exercises the public attribution surface on a
// fleet run with failures and requeues: components must sum to each
// request's wall latency, and the rollup must agree with the fleet
// stats' copy.
func TestRecorderAttribution(t *testing.T) {
	rec := NewRecorder()
	run, err := RunScenario("fleet-churn", ScenarioOptions{
		Target: ScenarioCluster, Requests: 30, Seed: 7, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	attrs := rec.Attribution()
	if len(attrs) == 0 {
		t.Fatal("no requests attributed")
	}
	byTag := map[int]FleetResult{}
	for _, r := range run.Fleet.Results {
		byTag[r.Tag] = r
	}
	for _, a := range attrs {
		sum := (((a.Queue + a.Service) + a.Reprefill) + a.Straggler) + a.Preemption
		tol := math.Nextafter(math.Abs(a.Wall), math.Inf(1)) - math.Abs(a.Wall)
		if math.Abs(sum-a.Wall) > tol {
			t.Errorf("tag %d: components sum to %v, wall is %v", a.Tag, sum, a.Wall)
		}
		r, ok := byTag[a.Tag]
		if !ok || r.Rejected {
			t.Errorf("tag %d attributed but not served", a.Tag)
			continue
		}
		if a.Wall != r.WallLatency || a.Device != r.Device || a.Requeues != r.Requeues {
			t.Errorf("tag %d: attribution wall/device/requeues %v/%d/%d vs result %v/%d/%d",
				a.Tag, a.Wall, a.Device, a.Requeues, r.WallLatency, r.Device, r.Requeues)
		}
	}
	if got := rec.AttributionSummary(); got != *run.FleetStats.Attribution {
		t.Errorf("AttributionSummary %+v != FleetStats.Attribution %+v",
			got, *run.FleetStats.Attribution)
	}
	if run.FleetStats.Requeues > 0 {
		lost := 0.0
		for _, a := range attrs {
			lost += a.LostWork
		}
		if lost == 0 {
			t.Error("fleet saw requeues but attribution found no lost work")
		}
	}
	// Reset empties the recorder for the next run.
	rec.Reset()
	if rec.SpanCount() != 0 {
		t.Fatalf("SpanCount after Reset = %d", rec.SpanCount())
	}
	// A nil recorder is valid everywhere and reports emptiness.
	var nilRec *Recorder
	if nilRec.SpanCount() != 0 || nilRec.Verify() != nil || len(nilRec.Attribution()) != 0 {
		t.Fatal("nil Recorder must behave as an empty trace")
	}
}
