package fasttts

// Golden-trace conformance: every named scenario is replayed on both
// targets and must reproduce its committed trace bit-identically — the
// serving stack is a deterministic simulation, so exact match is the
// contract, and any hot-path change that alters behavior fails here
// before it reaches a benchmark. Regenerate the goldens after an
// *intentional* behavior change with `make golden` (go test -run
// TestGoldenScenarioTraces -update .) and review the diff like code.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fasttts/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden scenario traces")

func goldenPath(name string, target ScenarioTarget) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s.%s.jsonl", name, target))
}

func TestGoldenScenarioTraces(t *testing.T) {
	for _, info := range Scenarios() {
		for _, target := range []ScenarioTarget{ScenarioServer, ScenarioCluster} {
			info, target := info, target
			t.Run(fmt.Sprintf("%s/%s", info.Name, target), func(t *testing.T) {
				run, err := RunScenario(info.Name, ScenarioOptions{Target: target})
				if err != nil {
					t.Fatal(err)
				}
				got, err := run.TraceJSONL()
				if err != nil {
					t.Fatal(err)
				}
				path := goldenPath(info.Name, target)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace %s (run `make golden` and commit the result): %v", path, err)
				}
				if ok, detail := trace.Conform(got, want); !ok {
					t.Fatalf("replay diverges from %s: %s", path, detail)
				}
			})
		}
	}
}

// TestGoldenTracesDecodable keeps the committed corpus well-formed: every
// golden file must decode, carry the current schema, and agree with its
// filename.
func TestGoldenTracesDecodable(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating goldens")
	}
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(Scenarios()); len(paths) != want {
		t.Fatalf("found %d golden traces, want %d (scenario catalog × both targets)", len(paths), want)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.DecodeJSONL(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got := goldenPath(tr.Scenario, ScenarioTarget(tr.Target)); got != path {
			t.Errorf("%s: header names %s/%s, expected filename %s", path, tr.Scenario, tr.Target, got)
		}
		if len(tr.Records) != tr.Requests {
			t.Errorf("%s: %d records for a %d-request stream", path, len(tr.Records), tr.Requests)
		}
		if tr.Stats.Served+tr.Stats.Rejected != tr.Requests {
			t.Errorf("%s: served %d + rejected %d != %d submitted", path, tr.Stats.Served, tr.Stats.Rejected, tr.Requests)
		}
	}
}

// TestScenarioRunDeterministic asserts the replay property the golden
// harness relies on, independent of any committed file: equal options
// give bit-identical trace bytes.
func TestScenarioRunDeterministic(t *testing.T) {
	for _, name := range []string{"diurnal", "fleet-churn"} {
		for _, target := range []ScenarioTarget{ScenarioServer, ScenarioCluster} {
			a, err := RunScenario(name, ScenarioOptions{Target: target, Requests: 10, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(name, ScenarioOptions{Target: target, Requests: 10, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			ab, _ := a.TraceJSONL()
			bb, _ := b.TraceJSONL()
			if !bytes.Equal(ab, bb) {
				t.Errorf("%s/%s: equal options gave unequal traces", name, target)
			}
			c, err := RunScenario(name, ScenarioOptions{Target: target, Requests: 10, Seed: 8})
			if err != nil {
				t.Fatal(err)
			}
			cb, _ := c.TraceJSONL()
			if bytes.Equal(ab, cb) {
				t.Errorf("%s/%s: seeds 7 and 8 gave identical traces", name, target)
			}
		}
	}
}
