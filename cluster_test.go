package fasttts

import (
	"reflect"
	"testing"
)

func clusterProblems(t *testing.T, n, distinct int) []*Problem {
	t.Helper()
	ds, err := LoadDataset("AMC23", 7)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]*Problem, n)
	for i := range probs {
		probs[i] = ds.Problems[i%distinct]
	}
	return probs
}

func fleetSpec(gpu string, seed uint64) DeviceSpec {
	return DeviceSpec{Config: Config{GPU: gpu, NumBeams: 8, Seed: seed}}
}

// TestClusterSingleDeviceMatchesServer: the PR 1 equivalence anchor at
// the public API — a 1-device cluster with the pass-through router
// reproduces Server's served stream exactly.
func TestClusterSingleDeviceMatchesServer(t *testing.T) {
	cfg := Config{GPU: "RTX 4090", NumBeams: 8, Seed: 42}
	reqs := PoissonRequests(clusterProblems(t, 6, 6), 0.5, 11)

	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := NewCluster(ClusterConfig{
		Devices: []DeviceSpec{{Config: cfg}},
		Router:  "single",
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := cl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != len(want) {
		t.Fatalf("cluster served %d results, server %d", len(run.Results), len(want))
	}
	for i, r := range run.Results {
		if r.Device != 0 || r.Requeues != 0 {
			t.Errorf("result %d: device %d requeues %d, want 0 and 0", i, r.Device, r.Requeues)
		}
		if !reflect.DeepEqual(r.ServedResult, want[i]) {
			t.Errorf("result %d differs from the single-Server stream", i)
		}
	}
	// The merged-stream aggregates must match the server's too.
	if st, sst := run.Stats().ServeStats, srv.Stats(want); !reflect.DeepEqual(st, sst) {
		t.Errorf("fleet ServeStats %+v != server stats %+v", st, sst)
	}
}

// TestClusterHeterogeneousFleet smoke-tests the full public surface: a
// heterogeneous 3-device fleet with a straggler and a fail-stop, served
// under prefix-affinity routing, is deterministic and internally
// consistent.
func TestClusterHeterogeneousFleet(t *testing.T) {
	cc := ClusterConfig{
		Devices: []DeviceSpec{
			fleetSpec("RTX 4090", 42),
			{Config: Config{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: 43}, Policy: "sjf", Slowdown: 2},
			{Config: Config{GPU: "RTX 3070 Ti", NumBeams: 8, Seed: 44}, FailAt: 40},
		},
		Router:     "prefix",
		Seed:       9,
		SLOLatency: 120,
	}
	reqs := PoissonRequests(clusterProblems(t, 12, 4), 0.4, 11)

	run := func() *FleetRun {
		cl, err := NewCluster(cc)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := cl.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds gave different fleet runs")
	}

	st := a.Stats()
	if st.Served+st.Rejected != len(reqs) {
		t.Errorf("served %d + rejected %d != %d submitted", st.Served, st.Rejected, len(reqs))
	}
	if len(st.PerDevice) != 3 {
		t.Fatalf("%d device stats, want 3", len(st.PerDevice))
	}
	var busy float64
	for _, d := range st.PerDevice {
		if d.Utilization < 0 || d.Utilization > 1+1e-9 {
			t.Errorf("device %d utilization %v outside [0,1]", d.Device, d.Utilization)
		}
		busy += d.BusyTime
	}
	if busy <= 0 {
		t.Error("fleet did no work")
	}
	if st.FailedDevices != 1 {
		t.Errorf("failed devices %d, want 1", st.FailedDevices)
	}
	if st.PrefixHitRate <= 0 {
		t.Errorf("prefix hit rate %v on repeat-heavy traffic, want > 0", st.PrefixHitRate)
	}
	if st.SLOAttainment < 0 || st.SLOAttainment > 1 {
		t.Errorf("SLO attainment %v outside [0,1]", st.SLOAttainment)
	}
}

func TestNewClusterValidates(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Error("NewCluster accepted an empty fleet")
	}
	if _, err := NewCluster(ClusterConfig{
		Devices: []DeviceSpec{fleetSpec("RTX 4090", 1)},
		Router:  "teleport",
	}); err == nil {
		t.Error("NewCluster accepted an unknown router")
	}
	if _, err := NewCluster(ClusterConfig{
		Devices: []DeviceSpec{{Config: Config{GPU: "TPU v5"}}},
	}); err == nil {
		t.Error("NewCluster accepted an unknown GPU")
	}
	if _, err := NewCluster(ClusterConfig{
		Devices: []DeviceSpec{{Config: Config{GPU: "RTX 4090"}, Policy: "lifo"}},
	}); err == nil {
		t.Error("NewCluster accepted an unknown device policy")
	}
}
