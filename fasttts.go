// Package fasttts is a from-scratch reproduction of FastTTS, the serving
// system for fast Test-Time Scaling (TTS) on memory-constrained edge
// devices (ASPLOS '26). It provides a plug-and-play API for running
// verifier-guided reasoning searches — Best-of-N, Beam Search, DVTS,
// Dynamic Branching, Varying Granularity — over a simulated edge serving
// stack with the paper's three optimizations:
//
//   - Speculative Beam Extension (§4.1) hides straggler latency by
//     generating future reasoning steps in idle batch slots;
//   - Dynamic Prefix-Aware Scheduling (§4.2) orders reasoning paths to
//     maximize KV-cache reuse;
//   - Asymmetric Multi-Model Memory Allocation (§4.3) splits KV memory
//     between generator and verifier with a roofline-guided search.
//
// Because no GPU, CUDA stack, or model weights are available in this
// environment, the neural-network arithmetic is replaced by a
// deterministic discrete-virtual-time simulation calibrated with a
// roofline cost model (see DESIGN.md for the substitution argument);
// every serving mechanism — paged radix-tree KV caching, continuous
// batching, preemption, offloading — is implemented for real.
//
// Quickstart:
//
//	sys, err := fasttts.New(fasttts.Config{
//		GPU:       "RTX 4090",
//		Pair:      fasttts.Pair1_5B1_5B,
//		Algorithm: "Beam Search",
//		NumBeams:  64,
//	})
//	ds, _ := fasttts.LoadDataset("AIME24", 7)
//	res, err := sys.Solve(ds.Problems[0])
//	fmt.Printf("goodput %.1f tok/s, latency %.1fs\n", res.Goodput, res.Latency)
//
// # Multi-tenant serving
//
// Server serves concurrent request streams with an event-driven
// virtual-clock engine that time-slices the device between admitted
// requests and preserves the paper's two-phase preemption semantics
// (§4.1.2): speculation runs only while no other request waits. The
// admission/ordering discipline is a pluggable ServePolicy selected by
// name in ServeConfig — "fcfs" (the sequential seed semantics), "sjf"
// (shortest estimated remaining work, First-Finish style), "priority",
// or "deadline" (earliest-deadline-first) — optionally wrapped with a
// MaxInFlight load-shedding admission limit. Open-loop traffic comes
// from the PoissonRequests / UniformRequests arrival generators;
// closed-loop (fixed-concurrency) traffic from Server.RunClosedLoop.
// Server.Stats aggregates a served stream into p50/p95/p99 wall latency,
// queue delay, server goodput, and SLO attainment. Equal seeds give
// bit-identical served streams under every policy.
//
//	srv, _ := fasttts.NewServerWith(fasttts.ServeConfig{
//		Config: fasttts.Config{NumBeams: 16, Seed: 42},
//		Policy: "sjf", SLOLatency: 60,
//	})
//	served, _ := srv.Run(fasttts.PoissonRequests(probs, 0.5, 11))
//	fmt.Printf("%+v\n", srv.Stats(served))
//
// # Fleet serving
//
// Cluster composes N per-device serving engines into a heterogeneous
// edge fleet (internal/cluster): each DeviceSpec carries its own GPU,
// model pair, policy, straggler factor, and fail-stop time, and a
// pluggable router named in ClusterConfig assigns every request to a
// device at its arrival instant — "single" (pass-through; a 1-device
// fleet reproduces Server exactly), "rr" (round-robin), "least-work",
// "jsq" (join-shortest-queue), "p2c" (power-of-two-choices), "prefix"
// (prefix-affinity with load fallback, extending §4.2's prefix-aware
// scheduling from intra-device to inter-device), or "cache-aware"
// (drain time plus the re-prefill debt of prompt tokens not resident in
// the device's KV memory plane). The
// failure model is fail-stop at slice granularity: a failing device
// finishes its in-progress slice, then its unfinished requests are
// requeued to the survivors with partial work lost; if no device
// survives, the remainder is reported Rejected. FleetRun.Stats extends
// the server aggregates with per-device utilization and goodput, the
// load-imbalance coefficient, the requeue count, and the fleet
// prompt-prefix KV hit rate. Equal seeds give bit-identical
// fleet-served streams under every router.
//
// The fleet core is event-driven and built to scale: global events
// dispatch from heaps so each event touches only the devices it
// concerns, and router load signals are O(1) incremental indexes rather
// than per-request scans — fleets of hundreds to thousands of devices
// serve high-rate streams with scheduling overhead that grows with
// events·log(devices), not events·devices (see README "Performance" and
// the committed BENCH_core.json trajectory).
//
//	cl, _ := fasttts.NewCluster(fasttts.ClusterConfig{
//		Devices: []fasttts.DeviceSpec{
//			{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 16, Seed: 42}},
//			{Config: fasttts.Config{GPU: "RTX 3070 Ti", NumBeams: 16, Seed: 43}, FailAt: 200},
//		},
//		Router: "prefix", Seed: 9,
//	})
//	run, _ := cl.Run(fasttts.PoissonRequests(probs, 0.6, 11))
//	fmt.Printf("%+v\n", run.Stats())
//
// # KV-cache memory plane
//
// Config.KVPlane (or a positive Config.KVPlaneBytes) attaches a
// per-device KV-cache memory plane (internal/memplane): each device's
// KV capacity is sized from its GPU tier (VRAM minus model weights at
// the model's per-token KV cost, or pinned explicitly), prompt prefixes
// stay resident in a radix prefix cache across requests, per-beam
// decode state is charged as the search widens and narrows, and LRU
// eviction reclaims cold prefixes under pressure. A request whose
// prompt prefix was evicted (or never seen) pays a deterministic
// re-prefill latency from the roofline cost model, so cache locality
// has a real price — the "cache-aware" router trades that re-prefill
// debt against load balance using actual per-device residency, and
// FleetStats reports per-device occupancy plus fleet hit/miss/eviction
// token counts and total re-prefill seconds. The plane is off by
// default; zero capacity reproduces prior traces bit-identically on
// both execution engines.
//
// # Elastic serving
//
// ClusterConfig.Autoscale attaches the elastic control plane
// (internal/control): a deterministic feedback controller observes the
// fleet at a fixed interval (window queue delay, utilization, SLO
// attainment, outstanding work) and actuates two knobs. Horizontally it
// scales up by instantiating warm-pool device templates — each join
// becomes routable after a prefill/warm-up delay — and scales down by
// draining devices (no new routes, accepted work finishes, the device
// leaves the fleet). Vertically a compute-budget governor degrades the
// per-request search budget — each tier halves the effective NumBeams,
// honored by both the solver and the SJF/least-work demand estimates —
// and restores it when load clears. Controllers are selected by name
// like policies and routers: "static", "threshold", "pid", "budget".
// Equal seeds reproduce the applied-action log (FleetRun.Actions)
// bit-identically; FleetStats adds DeviceSeconds (the capacity cost of
// elasticity) and the controller activity summary, and per-device stats
// report live intervals (join to fail/drain/makespan).
//
//	cl, _ := fasttts.NewCluster(fasttts.ClusterConfig{
//		Devices: []fasttts.DeviceSpec{{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 8, Seed: 42}}},
//		Router:  "least-work", SLOLatency: 120,
//		Autoscale: &fasttts.AutoscaleConfig{
//			Policy: "threshold", Interval: 30, WarmupDelay: 10,
//			WarmPool: []fasttts.DeviceSpec{{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 8, Seed: 60}, Count: 2}},
//		},
//	})
//	run, _ := cl.Run(fasttts.SinusoidalRequests(probs, 0.22, 1, 240, 11))
//	fmt.Println(run.Stats().DeviceSeconds, run.Actions)
//
// # Test-time-compute strategies
//
// Config.Strategy (per device), ClusterConfig.Strategy (fleet-wide),
// and ScenarioOptions.Strategy (scenario override) select how much of
// each request's search to run — a pluggable policy (internal/search)
// named like serve policies and routers: "full-beam" (run to
// completion, the default), "first-finish[:k]" (stop once k reasoning
// paths finish; latency-first search), "deadline" (cut the search at
// the request's SLO deadline and answer from the finished paths), or
// "hedged" (replicate each request on a second device; the first
// completion wins and the loser is cancelled fleet-wide). Cancellation
// is a deterministic first-class fleet event with its own slot in the
// event-ordering contract (join < fail < cancel < tick < arrival), so
// hedge losers free capacity before the same instant's control tick and
// arrivals observe the fleet; fail-stop composes by withdrawing dead
// copies and requeueing the last live one. The compute-budget governor
// degrades strategies to first-finish under storm tiers and restores
// them when load clears. Strategies are off by default — an empty
// Strategy reproduces prior traces bit-identically on both execution
// engines (see README "Test-time-compute strategies" and
// `make bench-strategy` for the measured latency/accuracy trade).
//
// # Streaming metrics
//
// ServeConfig.Metrics and ClusterConfig.Metrics select how Stats
// aggregates latency distributions. MetricsExact (the default) buffers
// and sorts every wall latency: exact nearest-rank percentiles, O(requests)
// memory, and the mode all committed golden traces are recorded under.
// MetricsStreaming folds completions into mergeable fixed-boundary
// quantile sketches as they finish (internal/metrics): aggregation
// state is constant (~20 KiB) no matter how many requests a run
// serves, percentiles and means stay within a documented <1% relative
// error of exact, and — because sketch merges are plain integer sums —
// the sharded fleet engine produces bit-identical streaming stats for
// every Parallelism setting. Use streaming for million-request runs
// where exact retention is the memory ceiling; keep exact wherever
// conformance against recorded values matters (see README "Streaming
// metrics" and `make bench-metrics` for the measured error sweep).
//
// # Workload scenarios and golden-trace regression
//
// RunScenario serves one of the named, composable workload scenarios
// (internal/scenario) — steady, diurnal (sinusoidal-rate arrivals),
// flash-crowd, heavy-tail, tenant-mix, fleet-churn (staggered fail-stop
// plus stragglers), burst-storm, the controller-driven
// autoscale-diurnal, flash-absorb, and budget-storm, the KV
// memory-plane cache-thrash and shared-prefix-storm, and the
// test-time-compute-strategy first-finish-mix and hedged-tail — on either the
// single-server or the cluster target. Every scenario builds a deterministic request stream,
// so a run is bit-identically reproducible; ScenarioRun.TraceJSONL
// renders it as a canonical record/replay trace (internal/trace), and
// the committed goldens under testdata/golden gate CI: replaying every
// scenario must reproduce its golden byte-for-byte (`make scenarios`,
// `make bench-regress`, regenerate intentional changes with
// `make golden`).
//
//	run, _ := fasttts.RunScenario("fleet-churn", fasttts.ScenarioOptions{
//		Target: fasttts.ScenarioCluster,
//	})
//	data, _ := run.TraceJSONL()
//
// # Development
//
// CI (.github/workflows/ci.yml) gates every change on go build, go vet,
// gofmt, go test -race, a coverage-profile run with a per-function
// summary and an uploaded profile artifact, a one-iteration benchmark
// smoke run, and the scenario-conformance job (golden-trace replay plus
// the BENCH_scenarios.json regression sweep); `make build / lint / test
// / bench / cover / scenarios / bench-regress` mirror the same gates
// locally.
package fasttts

import (
	"fmt"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/memplane"
	"fasttts/internal/model"
	"fasttts/internal/search"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// Pair names a generator+verifier deployment from the paper (§6.1).
type Pair string

const (
	// Pair1_5B1_5B is the memory-constrained configuration:
	// Qwen2.5-Math-1.5B generator + Skywork-o1-Open-PRM-1.5B verifier.
	Pair1_5B1_5B Pair = "1.5B+1.5B"
	// Pair1_5B7B is the verifier-heavy configuration:
	// Qwen2.5-Math-1.5B generator + Math-Shepherd-Mistral-7B verifier.
	Pair1_5B7B Pair = "1.5B+7B"
	// Pair7B1_5B is the generator-heavy configuration:
	// Qwen2.5-Math-7B generator + Skywork-o1-Open-PRM-1.5B verifier.
	Pair7B1_5B Pair = "7B+1.5B"
)

// Mode selects the serving system variant.
type Mode string

const (
	// ModeFastTTS enables all three optimizations (the paper's system).
	ModeFastTTS Mode = "fasttts"
	// ModeBaseline is the vLLM-style baseline (§6.1).
	ModeBaseline Mode = "baseline"
)

// MetricsMode selects how Server.Stats and FleetRun.Stats aggregate
// latency distributions (see the package docs' "Streaming metrics"
// section).
type MetricsMode string

const (
	// MetricsExact buffers every sample and sorts once: exact
	// nearest-rank percentiles, O(requests) memory. The default, and
	// the golden-trace conformance mode.
	MetricsExact MetricsMode = "exact"
	// MetricsStreaming aggregates mergeable quantile sketches instead
	// of retaining samples: constant memory, percentiles within a
	// documented <1% relative error of exact, bit-identical across
	// execution engines and shard counts.
	MetricsStreaming MetricsMode = "streaming"
)

// Config configures a serving deployment. Zero values select sensible
// defaults: RTX 4090, the 1.5B+1.5B pair, beam search with n=64, B=4,
// FastTTS mode.
type Config struct {
	// GPU is the device name: "RTX 4090", "RTX 4070 Ti", or "RTX 3070 Ti".
	GPU string
	// Pair selects the generator/verifier models.
	Pair Pair
	// Algorithm is the TTS search method: "Best-of-N", "Beam Search",
	// "DVTS", "Dynamic Branching", "Varying Granularity", or "CoT".
	Algorithm string
	// NumBeams is n, the search width; BranchFactor is B.
	NumBeams     int
	BranchFactor int
	// Mode selects FastTTS or the baseline; Advanced (optional)
	// overrides individual optimization toggles for ablations.
	Mode     Mode
	Advanced *Optimizations
	// MemoryFraction is the usable share of VRAM (default: 0.4 for the
	// 1.5B+1.5B pair as in the paper's memory-constrained setup, 0.9
	// otherwise).
	MemoryFraction float64
	// KVBudgetBytes, when positive, pins the KV budget directly
	// (memory-sweep experiments).
	KVBudgetBytes int64
	// AllowOffload enables CPU offloading of the inactive model's KV
	// (required on 8 GB devices).
	AllowOffload bool
	// KVPlane enables the per-device KV-cache memory plane
	// (internal/memplane): a capacity-bounded radix prefix cache that
	// keeps prompt prefixes resident across requests, charges decode
	// state per beam, evicts LRU under pressure, and converts prompt
	// cache misses into roofline-modeled re-prefill latency. Off by
	// default — the zero value reproduces prior behavior bit-identically.
	KVPlane bool
	// KVPlaneBytes, when positive, pins the plane's KV capacity in bytes
	// (and implies KVPlane); with KVPlane set and KVPlaneBytes 0 the
	// capacity auto-sizes to the device's KV budget (VRAM × MemoryFraction
	// minus weights and reservation). Negative values are rejected.
	KVPlaneBytes int64
	// Strategy names the test-time-compute strategy the solver honors:
	// "full-beam" (explicit legacy semantics), "first-finish" (return on
	// the first completed chain; an optional ":k" launches only k chains),
	// "deadline" (early-terminate a request whose deadline passes
	// mid-solve), or "hedged" (fleet-level: replicate each request to a
	// second device and cancel the loser — a per-device no-op here).
	// Empty disables strategies; behavior is then bit-identical to
	// pre-strategy builds.
	Strategy string
	// Seed drives all randomness; equal seeds give bit-identical runs.
	Seed uint64
	// Recorder, when set, captures per-kernel utilization samples.
	Recorder *trace.Recorder
}

// Optimizations exposes the ablation toggles (Fig 16's P/M/S axes).
type Optimizations struct {
	SpeculativeBeamExtension bool    // S
	PrefixAwareScheduling    bool    // P (implies generator prefix caching)
	AsymmetricMemory         bool    // M
	LookAheadVerification    bool    // part of S
	TruncationRatio          float64 // R (Fig 17 right)
	SpecBins                 int     // score bins for candidate selection
}

// System is a configured serving deployment. It is safe to reuse across
// problems; every Solve runs on a fresh virtual serving stack.
type System struct {
	cfg    core.Config
	runner *core.Runner
}

// New validates the configuration and builds the system.
func New(c Config) (*System, error) {
	cc, err := buildCoreConfig(c)
	if err != nil {
		return nil, err
	}
	runner, err := core.NewRunner(cc)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cc, runner: runner}, nil
}

func buildCoreConfig(c Config) (core.Config, error) {
	if c.GPU == "" {
		c.GPU = "RTX 4090"
	}
	gpu, err := hw.ByName(c.GPU)
	if err != nil {
		return core.Config{}, err
	}
	if c.Pair == "" {
		c.Pair = Pair1_5B1_5B
	}
	gen, genSkill, ver, verSkill, err := resolvePair(c.Pair)
	if err != nil {
		return core.Config{}, err
	}
	if c.Algorithm == "" {
		c.Algorithm = string(search.BeamSearch)
	}
	if c.NumBeams == 0 {
		c.NumBeams = 64
	}
	if c.BranchFactor == 0 {
		c.BranchFactor = 4
	}
	pol, err := search.New(search.Algorithm(c.Algorithm), c.NumBeams, c.BranchFactor)
	if err != nil {
		return core.Config{}, err
	}
	if c.MemoryFraction == 0 {
		if c.Pair == Pair1_5B1_5B && gpu.Name == hw.RTX4090.Name {
			// The paper's memory-constrained setting: the 1.5B pair is
			// restricted to 40% of the 4090 (§6.1). Smaller devices are
			// constrained by their VRAM already.
			c.MemoryFraction = 0.4
		} else {
			c.MemoryFraction = 0.9
		}
	}
	var opts core.Options
	switch {
	case c.Advanced != nil:
		opts = core.Options{
			Speculative:          c.Advanced.SpeculativeBeamExtension,
			PrefixAware:          c.Advanced.PrefixAwareScheduling,
			AsymmetricMemory:     c.Advanced.AsymmetricMemory,
			LookAhead:            c.Advanced.LookAheadVerification,
			VerifierPrefixCache:  c.Advanced.PrefixAwareScheduling,
			GeneratorPrefixCache: c.Advanced.PrefixAwareScheduling,
			TruncationRatio:      c.Advanced.TruncationRatio,
			SpecBins:             c.Advanced.SpecBins,
		}
	case c.Mode == ModeBaseline:
		opts = core.BaselineOptions()
	default:
		opts = core.FastTTSOptions()
	}
	opts.AllowOffload = c.AllowOffload
	strat, err := search.ParseStrategy(c.Strategy)
	if err != nil {
		return core.Config{}, fmt.Errorf("fasttts: %w", err)
	}
	cc := core.Config{
		GPU:              gpu,
		Generator:        gen,
		GenSkill:         genSkill,
		Verifier:         ver,
		VerSkill:         verSkill,
		MemoryFraction:   c.MemoryFraction,
		KVBudgetOverride: c.KVBudgetBytes,
		Policy:           pol,
		Strategy:         strat,
		Opts:             opts,
		Recorder:         c.Recorder,
		Seed:             c.Seed,
	}
	if c.KVPlaneBytes < 0 {
		return core.Config{}, fmt.Errorf("fasttts: KVPlaneBytes must be non-negative, got %d (0 disables the memory plane)", c.KVPlaneBytes)
	}
	if c.KVPlane || c.KVPlaneBytes > 0 {
		capacity := c.KVPlaneBytes
		if capacity == 0 {
			budget, err := cc.KVBudget()
			if err != nil {
				return core.Config{}, err
			}
			capacity = budget
		}
		cc.KVPlane = memplane.Config{CapacityBytes: capacity}
	}
	return cc, nil
}

func resolvePair(p Pair) (gen model.Config, gs workload.GeneratorSkill, ver model.Config, vs workload.VerifierSkill, err error) {
	switch p {
	case Pair1_5B1_5B:
		return model.Qwen25Math1_5B, workload.SkillQwen1_5B,
			model.SkyworkPRM1_5B, workload.SkillSkywork1_5B, nil
	case Pair1_5B7B:
		return model.Qwen25Math1_5B, workload.SkillQwen1_5B,
			model.ShepherdPRM7B, workload.SkillShepherd7B, nil
	case Pair7B1_5B:
		return model.Qwen25Math7B, workload.SkillQwen7B,
			model.SkyworkPRM1_5B, workload.SkillSkywork1_5B, nil
	}
	return model.Config{}, workload.GeneratorSkill{}, model.Config{}, workload.VerifierSkill{},
		fmt.Errorf("fasttts: unknown model pair %q", p)
}

// Solve runs the configured search for one problem.
func (s *System) Solve(p *Problem) (*Result, error) {
	res, err := s.runner.Solve(p.inner)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}
