package fasttts

import (
	"fasttts/internal/rng"
	"fasttts/internal/workload"
)

// Problem is one benchmark question.
type Problem struct {
	Dataset    string
	Index      int
	Difficulty float64 // 0 (trivial) .. 1 (beyond the model)
	inner      *workload.Problem
}

// Dataset is a realized benchmark.
type Dataset struct {
	Name     string
	Problems []*Problem
}

// LoadDataset materializes one of the paper's benchmarks — "AIME24",
// "AMC23", "MATH500", or "HumanEval" — deterministically from the seed.
func LoadDataset(name string, seed uint64) (*Dataset, error) {
	spec, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	ds := workload.NewDataset(spec, rng.New(seed))
	out := &Dataset{Name: name}
	for _, p := range ds.Problems {
		out.Problems = append(out.Problems, &Problem{
			Dataset:    p.Dataset,
			Index:      p.Index,
			Difficulty: p.Difficulty,
			inner:      p,
		})
	}
	return out, nil
}

// Subset returns the first n problems (all if fewer exist).
func (d *Dataset) Subset(n int) []*Problem {
	if n > len(d.Problems) {
		n = len(d.Problems)
	}
	return d.Problems[:n]
}
