package fasttts

// Direct table tests for result.go: wrapResult's field mapping, the
// voting/ranking accessors, and Summarize's aggregation.

import (
	"math"
	"testing"

	"fasttts/internal/core"
)

func coreResult(latency, goodput float64, paths ...core.FinalPath) *core.Result {
	return &core.Result{
		Finished:         paths,
		Latency:          latency,
		GenTime:          latency * 0.6,
		VerTime:          latency * 0.3,
		TransferTime:     latency * 0.1,
		Goodput:          goodput,
		Iterations:       7,
		TokensDecoded:    1000,
		SpecTokens:       200,
		SpecRetained:     150,
		RecomputedTokens: 30,
	}
}

func TestWrapResultFieldMapping(t *testing.T) {
	inner := coreResult(40, 512.5,
		core.FinalPath{BeamID: 0, Steps: 4, Tokens: 900, Answer: 0, Score: 0.8, CompletedAt: 31},
		core.FinalPath{BeamID: 1, Steps: 5, Tokens: 1100, Answer: 3, Score: 0.4, CompletedAt: 39},
	)
	res := wrapResult(inner)
	if res.Latency != 40 || res.Goodput != 512.5 || res.Iterations != 7 {
		t.Errorf("headline fields: %+v", res)
	}
	if got := res.GenLatency + res.VerLatency + res.TransferLatency; math.Abs(got-res.Latency) > 1e-9 {
		t.Errorf("latency components sum to %v, want %v", got, res.Latency)
	}
	if res.SpecTokens != 200 || res.SpecRetained != 150 || res.RecomputedTokens != 30 {
		t.Errorf("token counters: %+v", res)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("%d paths, want 2", len(res.Paths))
	}
	want := Path{Tokens: 900, Steps: 4, Answer: 0, Score: 0.8, CompletedAt: 31}
	if res.Paths[0] != want {
		t.Errorf("path 0 = %+v, want %+v", res.Paths[0], want)
	}
}

func TestResultVotingAccessors(t *testing.T) {
	cases := []struct {
		name     string
		paths    []core.FinalPath
		wantTop1 bool
		wantPass map[int]bool
	}{
		{
			name: "majority correct",
			paths: []core.FinalPath{
				{Answer: 0, Score: 0.6}, {Answer: 0, Score: 0.5}, {Answer: 2, Score: 0.9},
			},
			wantTop1: true,
			wantPass: map[int]bool{1: false, 2: true, 3: true},
		},
		{
			name: "majority wrong but top-scored correct",
			paths: []core.FinalPath{
				{Answer: 5, Score: 0.3}, {Answer: 5, Score: 0.2}, {Answer: 0, Score: 0.9},
			},
			wantTop1: false,
			wantPass: map[int]bool{1: true, 3: true},
		},
		{
			name:     "no paths",
			wantTop1: false,
			wantPass: map[int]bool{1: false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := wrapResult(coreResult(10, 100, tc.paths...))
			if got := res.Top1Correct(); got != tc.wantTop1 {
				t.Errorf("Top1Correct = %v, want %v", got, tc.wantTop1)
			}
			for n, want := range tc.wantPass {
				if got := res.PassAtN(n); got != want {
					t.Errorf("PassAtN(%d) = %v, want %v", n, got, want)
				}
			}
		})
	}
}

func TestSummarizeTable(t *testing.T) {
	correct := coreResult(20, 400, core.FinalPath{Answer: 0, Score: 0.9})
	wrong := coreResult(60, 200, core.FinalPath{Answer: 4, Score: 0.9})
	s := Summarize([]*Result{wrapResult(correct), wrapResult(wrong)})
	if s.Problems != 2 {
		t.Errorf("Problems = %d, want 2", s.Problems)
	}
	if s.Top1Accuracy != 50 {
		t.Errorf("Top1Accuracy = %v, want 50", s.Top1Accuracy)
	}
	if s.MeanLatency != 40 || s.MeanGoodput != 300 {
		t.Errorf("means: latency %v goodput %v, want 40/300", s.MeanLatency, s.MeanGoodput)
	}
	if s.MeanGenTime != 24 || s.MeanVerTime != 12 {
		t.Errorf("component means: gen %v ver %v, want 24/12", s.MeanGenTime, s.MeanVerTime)
	}
	if s.TotalSpec != 400 || s.TotalRetained != 300 {
		t.Errorf("speculation totals: %d/%d, want 400/300", s.TotalSpec, s.TotalRetained)
	}
}

func TestSummarizeEmptyTable(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero value", s)
	}
}
