package fasttts

// One testing.B benchmark per paper figure: each regenerates the figure's
// data series from the simulated serving stack, so `go test -bench=.`
// re-runs the complete evaluation. The reported metric is wall-clock time
// to reproduce the figure (simulation speed); the figure contents
// themselves are written by cmd/fastttsbench and validated by the shape
// tests in internal/bench.

import (
	"testing"

	"fasttts/internal/bench"
)

// benchOpts keeps -bench=. runs fast while exercising every code path;
// cmd/fastttsbench regenerates figures at full scale.
func benchOpts() bench.RunOpts {
	return bench.RunOpts{Problems: 3, Seed: 42, MaxN: 128}
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	fig, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fig.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("figure %s produced no rows", id)
		}
	}
}

func BenchmarkFig01aMemoryTable(b *testing.B)     { runFigure(b, "1a") }
func BenchmarkFig01bLatencyFrontier(b *testing.B) { runFigure(b, "1b") }
func BenchmarkFig03LeftAccLatency(b *testing.B)   { runFigure(b, "3l") }
func BenchmarkFig03RightStepTokens(b *testing.B)  { runFigure(b, "3r") }
func BenchmarkFig04UtilPhases(b *testing.B)       { runFigure(b, "4") }
func BenchmarkFig05LeftPrefixMemory(b *testing.B) { runFigure(b, "5l") }
func BenchmarkFig05RightHeatmap(b *testing.B)     { runFigure(b, "5r") }
func BenchmarkFig06ThroughputVsKV(b *testing.B)   { runFigure(b, "6") }
func BenchmarkFig10RooflineAlloc(b *testing.B)    { runFigure(b, "10") }
func BenchmarkFig11SearchVariants(b *testing.B)   { runFigure(b, "11") }
func BenchmarkFig12Goodput(b *testing.B)          { runFigure(b, "12") }
func BenchmarkFig13Latency(b *testing.B)          { runFigure(b, "13") }
func BenchmarkFig14aTop1(b *testing.B)            { runFigure(b, "14a") }
func BenchmarkFig14bPassN(b *testing.B)           { runFigure(b, "14b") }
func BenchmarkFig15ConstrainedHW(b *testing.B)    { runFigure(b, "15") }
func BenchmarkFig16Ablation(b *testing.B)         { runFigure(b, "16") }
func BenchmarkFig17LeftUtil(b *testing.B)         { runFigure(b, "17l") }
func BenchmarkFig17RightTruncation(b *testing.B)  { runFigure(b, "17r") }
func BenchmarkFig18LeftSchedulers(b *testing.B)   { runFigure(b, "18l") }
func BenchmarkFig18RightMemoryGain(b *testing.B)  { runFigure(b, "18r") }

// BenchmarkSolveBeamSearch measures raw simulation throughput of one
// beam-search solve (the unit every figure is built from).
func BenchmarkSolveBeamSearch(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(itoa(n), func(b *testing.B) {
			sys, err := New(Config{NumBeams: n, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			ds, err := LoadDataset("AIME24", 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Solve(ds.Problems[i%len(ds.Problems)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
