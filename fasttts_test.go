package fasttts

import (
	"testing"

	"fasttts/internal/trace"
)

func TestNewDefaults(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{GPU: "H100"},
		{Pair: "13B+13B"},
		{Algorithm: "MCTS-9000"},
		{NumBeams: -1},
		{Pair: Pair7B1_5B, GPU: "RTX 3070 Ti"}, // 7B weights exceed 8 GB
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestSolveQuickstart(t *testing.T) {
	sys, err := New(Config{NumBeams: 16, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset("AIME24", 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Solve(ds.Problems[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput <= 0 || res.Latency <= 0 || len(res.Paths) == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if got := res.GenLatency + res.VerLatency + res.TransferLatency; got <= 0 || got > res.Latency*1.000001 {
		t.Errorf("latency breakdown %v vs total %v", got, res.Latency)
	}
}

func TestLoadDatasetUnknown(t *testing.T) {
	if _, err := LoadDataset("GSM8K", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	ds, err := LoadDataset("AMC23", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Problems) != 40 {
		t.Errorf("AMC23 problems = %d", len(ds.Problems))
	}
	if got := len(ds.Subset(3)); got != 3 {
		t.Errorf("Subset(3) = %d", got)
	}
}

func TestBaselineVsFastTTS(t *testing.T) {
	ds, _ := LoadDataset("AIME24", 7)
	p := ds.Problems[0]
	solve := func(mode Mode) *Result {
		sys, err := New(Config{NumBeams: 32, Mode: mode, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := solve(ModeBaseline)
	fast := solve(ModeFastTTS)
	if fast.Goodput <= base.Goodput {
		t.Errorf("FastTTS goodput %.2f not above baseline %.2f", fast.Goodput, base.Goodput)
	}
	if fast.Latency >= base.Latency {
		t.Errorf("FastTTS latency %.2f not below baseline %.2f", fast.Latency, base.Latency)
	}
	// Algorithmic equivalence at the API level: identical answers.
	if len(base.Paths) != len(fast.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(base.Paths), len(fast.Paths))
	}
	for i := range base.Paths {
		if base.Paths[i].Answer != fast.Paths[i].Answer {
			t.Errorf("path %d answers diverge", i)
		}
	}
	if base.Top1Correct() != fast.Top1Correct() {
		t.Error("Top-1 outcome diverged between modes")
	}
}

func TestAdvancedOverrides(t *testing.T) {
	sys, err := New(Config{
		NumBeams: 16,
		Advanced: &Optimizations{
			SpeculativeBeamExtension: true,
			PrefixAwareScheduling:    true,
			TruncationRatio:          0.5,
		},
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := LoadDataset("AIME24", 7)
	res, err := sys.Solve(ds.Problems[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecTokens == 0 {
		t.Error("speculation disabled despite override")
	}
}

func TestSummarize(t *testing.T) {
	sys, err := New(Config{NumBeams: 16, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := LoadDataset("AMC23", 7)
	var results []*Result
	for _, p := range ds.Subset(4) {
		res, err := sys.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	sum := Summarize(results)
	if sum.Problems != 4 {
		t.Errorf("problems = %d", sum.Problems)
	}
	if sum.MeanGoodput <= 0 || sum.MeanLatency <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Top1Accuracy < 0 || sum.Top1Accuracy > 100 {
		t.Errorf("accuracy = %v", sum.Top1Accuracy)
	}
}

func TestServerPreemptsSpeculation(t *testing.T) {
	ds, _ := LoadDataset("AIME24", 7)
	srv, err := NewServer(Config{NumBeams: 32, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Second request arrives immediately: request 1's speculative phase
	// must be fully preempted.
	out, err := srv.Run([]Request{
		{Problem: ds.Problems[0], ArrivalTime: 0},
		{Problem: ds.Problems[1], ArrivalTime: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("results = %d", len(out))
	}
	if out[0].SpecTokens != 0 {
		t.Errorf("request 1 speculated %d tokens despite a waiting request", out[0].SpecTokens)
	}
	// Last request in the queue has nothing behind it: free to speculate.
	if out[1].SpecTokens == 0 {
		t.Error("request 2 should speculate with an empty queue")
	}
	if out[1].QueueDelay <= 0 {
		t.Errorf("request 2 queue delay = %v, want > 0", out[1].QueueDelay)
	}
	if out[1].StartTime < out[0].FinishTime {
		t.Error("FCFS violated")
	}
}

func TestServerIdleArrivals(t *testing.T) {
	ds, _ := LoadDataset("AMC23", 7)
	srv, err := NewServer(Config{NumBeams: 16, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Requests spaced far apart: no queueing, both speculate.
	out, err := srv.Run([]Request{
		{Problem: ds.Problems[0], ArrivalTime: 0},
		{Problem: ds.Problems[1], ArrivalTime: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sv := range out {
		if sv.QueueDelay != 0 {
			t.Errorf("request %d queued %v despite idle server", i, sv.QueueDelay)
		}
		if sv.SpecTokens == 0 {
			t.Errorf("request %d did not speculate on an idle server", i)
		}
	}
}

func TestRecorderWiring(t *testing.T) {
	rec := &trace.Recorder{}
	sys, err := New(Config{NumBeams: 16, Seed: 42, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := LoadDataset("AIME24", 7)
	if _, err := sys.Solve(ds.Problems[0]); err != nil {
		t.Fatal(err)
	}
	if len(rec.Samples) == 0 {
		t.Error("recorder captured nothing")
	}
}

func TestOffloadConfig(t *testing.T) {
	sys, err := New(Config{
		GPU:          "RTX 3070 Ti",
		Pair:         Pair1_5B1_5B,
		NumBeams:     16,
		AllowOffload: true,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := LoadDataset("AIME24", 7)
	res, err := sys.Solve(ds.Problems[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) == 0 {
		t.Error("no paths on offloading config")
	}
}
