package fasttts_test

import (
	"math"
	"testing"

	"fasttts"
)

func testServeConfig() fasttts.Config {
	return fasttts.Config{
		Pair:     fasttts.Pair1_5B1_5B,
		NumBeams: 8,
		Seed:     42,
	}
}

func loadServeProblems(t *testing.T, n int) []*fasttts.Problem {
	t.Helper()
	aime, err := fasttts.LoadDataset("AIME24", 7)
	if err != nil {
		t.Fatal(err)
	}
	short, err := fasttts.LoadDataset("MATH500", 7)
	if err != nil {
		t.Fatal(err)
	}
	var out []*fasttts.Problem
	for i := 0; len(out) < n; i++ {
		out = append(out, aime.Problems[i%len(aime.Problems)])
		if len(out) < n {
			out = append(out, short.Problems[i])
		}
	}
	return out
}

// TestServeConfigPolicies drives each policy through the public API and
// checks the served stream and its aggregates are well-formed.
func TestServeConfigPolicies(t *testing.T) {
	probs := loadServeProblems(t, 8)
	reqs := fasttts.PoissonRequests(probs, 0.5, 11)
	for _, policy := range []string{"", "fcfs", "sjf", "priority", "deadline"} {
		srv, err := fasttts.NewServerWith(fasttts.ServeConfig{
			Config: testServeConfig(), Policy: policy, SLOLatency: 120,
		})
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		served, err := srv.Run(reqs)
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		if len(served) != len(reqs) {
			t.Fatalf("policy %q: served %d of %d", policy, len(served), len(reqs))
		}
		for i, sv := range served {
			if sv.Rejected || sv.Result == nil {
				t.Fatalf("policy %q: request %d rejected or missing result", policy, i)
			}
			if sv.StartTime < sv.ArrivalTime {
				t.Errorf("policy %q: request %d started before arrival", policy, i)
			}
			if got := sv.FinishTime - sv.ArrivalTime; math.Abs(sv.WallLatency-got) > 1e-12 {
				t.Errorf("policy %q: wall latency %v != finish-arrival %v", policy, sv.WallLatency, got)
			}
		}
		st := srv.Stats(served)
		if st.Served != len(reqs) || st.Rejected != 0 {
			t.Errorf("policy %q: stats served/rejected %d/%d", policy, st.Served, st.Rejected)
		}
		if st.P50Latency > st.P95Latency || st.P95Latency > st.P99Latency {
			t.Errorf("policy %q: percentiles not ordered: %+v", policy, st)
		}
		if st.SLOAttainment < 0 || st.SLOAttainment > 1 {
			t.Errorf("policy %q: SLO attainment %v outside [0,1]", policy, st.SLOAttainment)
		}
		if st.Goodput <= 0 {
			t.Errorf("policy %q: non-positive goodput", policy)
		}
	}

	if _, err := fasttts.NewServerWith(fasttts.ServeConfig{Config: testServeConfig(), Policy: "lifo"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestServeAdmissionControl sheds load beyond MaxInFlight.
func TestServeAdmissionControl(t *testing.T) {
	probs := loadServeProblems(t, 6)
	srv, err := fasttts.NewServerWith(fasttts.ServeConfig{
		Config: testServeConfig(), MaxInFlight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]fasttts.Request, len(probs))
	for i, p := range probs {
		reqs[i] = fasttts.Request{Problem: p} // simultaneous burst
	}
	served, err := srv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats(served)
	if st.Served != 2 || st.Rejected != 4 {
		t.Errorf("served/rejected = %d/%d, want 2/4", st.Served, st.Rejected)
	}
}

// TestServeClosedLoop runs the fixed-concurrency loop via the public API.
func TestServeClosedLoop(t *testing.T) {
	probs := loadServeProblems(t, 6)
	srv, err := fasttts.NewServer(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	served, err := srv.RunClosedLoop(probs, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(probs) {
		t.Fatalf("served %d of %d", len(served), len(probs))
	}
}
