package fasttts

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func testDeviceSpec(name string) DeviceSpec {
	return DeviceSpec{
		Config: Config{GPU: "RTX 4090", NumBeams: 4, Seed: 42},
		Name:   name,
	}
}

// TestClusterConfigValidation is the satellite table: misconfigurations
// that used to silently corrupt routing or telemetry now fail fast with
// descriptive errors.
func TestClusterConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     ClusterConfig
		wantErr string
	}{
		{
			name:    "no devices",
			cfg:     ClusterConfig{},
			wantErr: "at least one device",
		},
		{
			name: "duplicate device names",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				testDeviceSpec("edge-a"), testDeviceSpec("edge-a"),
			}},
			wantErr: "duplicate device name",
		},
		{
			name: "duplicate name across warm pool",
			cfg: ClusterConfig{
				Devices: []DeviceSpec{testDeviceSpec("edge-a")},
				Autoscale: &AutoscaleConfig{
					Policy: "threshold", Interval: 10,
					WarmPool: []DeviceSpec{testDeviceSpec("edge-a")},
				},
			},
			wantErr: "duplicate device name",
		},
		{
			name: "explicit name collides with derived positional name",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				testDeviceSpec("device-1"), {Config: Config{NumBeams: 4}},
			}},
			wantErr: "collides with the derived name",
		},
		{
			name: "explicit name collides with replica-derived name",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				testDeviceSpec("a#1"),
				func() DeviceSpec { d := testDeviceSpec("a"); d.Count = 2; return d }(),
			}},
			wantErr: "collides with the derived name",
		},
		{
			name: "negative slowdown",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				{Config: Config{NumBeams: 4}, Slowdown: -2},
			}},
			wantErr: "Slowdown must be non-negative",
		},
		{
			name: "NaN slowdown",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				{Config: Config{NumBeams: 4}, Slowdown: math.NaN()},
			}},
			wantErr: "Slowdown must be non-negative",
		},
		{
			name: "negative count",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				{Config: Config{NumBeams: 4}, Count: -1},
			}},
			wantErr: "Count must be positive",
		},
		{
			name: "NaN FailAt",
			cfg: ClusterConfig{Devices: []DeviceSpec{
				{Config: Config{NumBeams: 4}, FailAt: math.NaN()},
			}},
			wantErr: "FailAt is NaN",
		},
		{
			name: "unknown controller",
			cfg: ClusterConfig{
				Devices:   []DeviceSpec{testDeviceSpec("a")},
				Autoscale: &AutoscaleConfig{Policy: "chaos", Interval: 10},
			},
			wantErr: "unknown controller",
		},
		{
			name: "zero control interval",
			cfg: ClusterConfig{
				Devices:   []DeviceSpec{testDeviceSpec("a")},
				Autoscale: &AutoscaleConfig{Policy: "threshold"},
			},
			wantErr: "interval must be positive",
		},
		{
			name: "FailAt in warm pool",
			cfg: ClusterConfig{
				Devices: []DeviceSpec{testDeviceSpec("a")},
				Autoscale: &AutoscaleConfig{
					Policy: "threshold", Interval: 10,
					WarmPool: []DeviceSpec{{Config: Config{NumBeams: 4}, FailAt: 50}},
				},
			},
			wantErr: "FailAt",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster(tc.cfg)
			if err == nil {
				t.Fatalf("NewCluster accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDeviceSpecCountExpansion: a Count group expands into that many
// fleet members with derived names and seeds.
func TestDeviceSpecCountExpansion(t *testing.T) {
	spec := testDeviceSpec("pool")
	spec.Count = 3
	cl, err := NewCluster(ClusterConfig{Devices: []DeviceSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset("MATH500", 7)
	if err != nil {
		t.Fatal(err)
	}
	run, err := cl.Run(UniformRequests(ds.Problems[:6], 5))
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats()
	if len(st.PerDevice) != 3 {
		t.Fatalf("Count 3 expanded to %d devices", len(st.PerDevice))
	}
	for i, d := range st.PerDevice {
		if want := "pool#" + string(rune('0'+i)); d.Name != want {
			t.Errorf("device %d named %q, want %q", i, d.Name, want)
		}
	}
	// Unnamed single devices get positional names.
	cl2, err := NewCluster(ClusterConfig{Devices: []DeviceSpec{
		{Config: Config{NumBeams: 4}}, {Config: Config{NumBeams: 4, Seed: 9}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := cl2.Run(UniformRequests(ds.Problems[:2], 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := run2.Stats().PerDevice[1].Name; got != "device-1" {
		t.Errorf("unnamed device labeled %q", got)
	}
}

// TestAutoscaleRoundTrip exercises the full public path: an elastic
// cluster under burst load scales up from the warm pool, the action log
// and control stats surface, runs are reproducible, and device-seconds
// account the live intervals.
func TestAutoscaleRoundTrip(t *testing.T) {
	ds, err := LoadDataset("MATH500", 7)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]*Problem, 16)
	for i := range probs {
		probs[i] = ds.Problems[i%len(ds.Problems)]
	}
	cfg := ClusterConfig{
		Devices: []DeviceSpec{{Config: Config{GPU: "RTX 4090", NumBeams: 8, Seed: 42}, Name: "base"}},
		Router:  "least-work",
		Seed:    5,
		// A 1.5s-spacing stream overloads a single device.
		SLOLatency: 120,
		Autoscale: &AutoscaleConfig{
			Policy:      "threshold",
			Interval:    10,
			WarmPool:    []DeviceSpec{{Config: Config{GPU: "RTX 4090", NumBeams: 8, Seed: 60}, Name: "burst", Count: 2}},
			WarmupDelay: 5,
		},
	}
	runOnce := func() *FleetRun {
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := cl.Run(UniformRequests(probs, 1.5))
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	a := runOnce()
	st := a.Stats()
	if st.Control == nil {
		t.Fatal("autoscaled run missing ControlStats")
	}
	if st.Control.ScaleUps == 0 || len(a.Actions) == 0 {
		t.Fatalf("no scale-up under overload: %+v, actions %v", st.Control, a.Actions)
	}
	if st.DeviceSeconds <= 0 {
		t.Errorf("DeviceSeconds = %v", st.DeviceSeconds)
	}
	if st.Control.PeakDevices < 2 {
		t.Errorf("PeakDevices = %d, want >= 2", st.Control.PeakDevices)
	}
	sawWarm := false
	for _, d := range st.PerDevice {
		if strings.HasPrefix(d.Name, "warm:burst#") {
			sawWarm = true
			if d.LiveStart <= 0 {
				t.Errorf("warm instance %s has LiveStart %v", d.Name, d.LiveStart)
			}
		}
	}
	if !sawWarm {
		t.Errorf("no warm-pool instance in per-device stats: %+v", st.PerDevice)
	}
	// Reproducibility: equal configs give bit-identical runs and logs.
	b := runOnce()
	if !reflect.DeepEqual(a.Actions, b.Actions) {
		t.Errorf("action logs diverge:\n%v\nvs\n%v", a.Actions, b.Actions)
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Errorf("stats diverge")
	}
}

// TestElasticScenariosExerciseControllers pins that the controller-driven
// scenarios actually drive their controllers at default parameters: the
// scaling scenarios join warm capacity, the budget scenario degrades
// search width. Without this the golden traces could silently pin a
// do-nothing control plane.
func TestElasticScenariosExerciseControllers(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scaled bool // expects warm-pool joins (vs budget-tier moves)
	}{
		{"autoscale-diurnal", true},
		{"flash-absorb", true},
		{"budget-storm", false},
	} {
		run, err := RunScenario(tc.name, ScenarioOptions{Target: ScenarioCluster})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st := run.FleetStats
		if st == nil || st.Control == nil {
			t.Fatalf("%s: no control stats on the cluster target", tc.name)
		}
		if len(run.Fleet.Actions) == 0 {
			t.Errorf("%s: empty action log", tc.name)
		}
		if tc.scaled && st.Control.ScaleUps == 0 {
			t.Errorf("%s: controller never scaled up: %+v", tc.name, st.Control)
		}
		if !tc.scaled && (st.Control.TierChanges == 0 || st.Control.DegradedRequests == 0) {
			t.Errorf("%s: governor never degraded the budget: %+v", tc.name, st.Control)
		}
	}
}
